// Figure 9: sensitivity studies on the homogeneous co-run.
//
// Setup (§8.3): one instance of every catalog workload on every server; all
// ten jobs run together, once under the baseline and once under Saba.
// (a) dataset size 0.1x/1x/10x at runtime (profiles taken at 1x, k=3).
//     Paper averages: 1.33x / 1.54x / 1.40x.
// (b) node count 0.5x-4x of the 8-node profile (dataset 1x, k=3).
//     Paper averages: 1.42x / 1.54x / 1.34x / 1.26x / 1.09x.
// (c) polynomial degree k=1..3 (1x dataset, 8 nodes).
//     Paper averages: 1.27x / 1.42x / ~1.54x.

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/corun.h"
#include "src/exp/report.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

// All ten workloads co-located on `num_nodes` servers at `dataset_scale`.
std::vector<JobSpec> HomogeneousJobs(double dataset_scale, int num_nodes, Rng* rng) {
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < num_nodes; ++h) {
    hosts.push_back(h);
  }
  std::vector<JobSpec> jobs;
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    jobs.push_back({ScaleWorkload(spec, dataset_scale, num_nodes), hosts,
                    rng->Uniform(0, 5.0)});
  }
  return jobs;
}

// Runs the co-run under baseline and Saba; returns per-job speedups.
std::vector<double> SpeedupsFor(const SensitivityTable& table, double dataset_scale,
                                int num_nodes, uint64_t seed) {
  Rng rng(seed);
  const std::vector<JobSpec> jobs = HomogeneousJobs(dataset_scale, num_nodes, &rng);
  const Topology topo = BuildSingleSwitchStar(num_nodes, Gbps64(56));
  CoRunOptions baseline_options;
  baseline_options.policy = PolicyKind::kBaseline;
  const CoRunResult baseline = RunCoRun(topo, jobs, baseline_options);
  CoRunOptions saba_options;
  saba_options.policy = PolicyKind::kSaba;
  saba_options.table = &table;
  saba_options.seed = seed;
  const CoRunResult saba = RunCoRun(topo, jobs, saba_options);
  return Speedups(baseline, saba);
}

void PrintStudy(const std::string& title, const std::vector<std::string>& configs,
                const std::vector<std::vector<double>>& speedups,
                const std::vector<std::string>& paper_avgs) {
  std::cout << "--- " << title << " ---\n";
  std::vector<std::string> headers = {"Workload"};
  headers.insert(headers.end(), configs.begin(), configs.end());
  TablePrinter table(headers);
  const auto& catalog = HiBenchCatalog();
  for (size_t w = 0; w < catalog.size(); ++w) {
    std::vector<std::string> row = {catalog[w].name};
    for (const auto& column : speedups) {
      row.push_back(Fmt(column[w]));
    }
    table.AddRow(row);
  }
  std::vector<std::string> avg_row = {"Average"};
  std::vector<std::string> paper_row = {"(paper)"};
  for (size_t c = 0; c < speedups.size(); ++c) {
    avg_row.push_back(Fmt(GeometricMean(speedups[c])));
    paper_row.push_back(paper_avgs[c]);
  }
  table.AddRow(avg_row);
  table.AddRow(paper_row);
  table.Print(std::cout);
  std::cout << '\n';
}

void Run() {
  const uint64_t seed = EnvSeed();
  PrintBanner(std::cout, "Figure 9",
              "Impact of dataset size (a), node count (b), and polynomial degree (c) on "
              "Saba's speedup over the baseline (homogeneous 10-job co-run).",
              seed);

  // Profile the catalog once per polynomial degree (profiling is
  // deterministic in (seed, degree), so sharing the k=3 table between the
  // studies changes nothing).
  const std::vector<SensitivityTable> tables =
      RunSweep<SensitivityTable>("fig9 profiles", 3, [&](size_t k) {
        return ProfileCatalog(seed, k + 1);
      });
  const SensitivityTable& table_k3 = tables[2];

  // The 11 study cells — (a) 3 dataset scales, (b) 5 node counts, (c) 3
  // degrees — are independent co-runs: one sweep task each.
  struct Cell {
    const SensitivityTable* table;
    double dataset_scale;
    int num_nodes;
  };
  std::vector<Cell> cells;
  for (double scale : {0.1, 1.0, 10.0}) {
    cells.push_back({&table_k3, scale, 8});
  }
  for (int nodes : {4, 8, 16, 24, 32}) {
    cells.push_back({&table_k3, 1.0, nodes});
  }
  for (size_t k : {0u, 1u, 2u}) {
    cells.push_back({&tables[k], 1.0, 8});
  }
  const std::vector<std::vector<double>> columns =
      RunSweep<std::vector<double>>("fig9 cells", cells.size(), [&](size_t c) {
        return SpeedupsFor(*cells[c].table, cells[c].dataset_scale, cells[c].num_nodes, seed);
      });

  PrintStudy("Fig 9a: speedup vs runtime dataset size", {"0.1x", "1x", "10x"},
             {columns[0], columns[1], columns[2]}, {"1.33", "1.54", "1.40"});
  PrintStudy("Fig 9b: speedup vs runtime node count", {"0.5x", "1x", "2x", "3x", "4x"},
             {columns[3], columns[4], columns[5], columns[6], columns[7]},
             {"1.42", "1.54", "1.34", "1.26", "1.09"});
  PrintStudy("Fig 9c: speedup vs polynomial degree", {"k=1", "k=2", "k=3"},
             {columns[8], columns[9], columns[10]}, {"1.27", "1.42", "~1.5"});
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
