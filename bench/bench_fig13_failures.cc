// Figure 13 (beyond the paper): allocation under routing diversity and
// fabric failures on a k-ary fat-tree.
//
// Every paper figure runs a healthy fabric with static shortest paths; this
// sweep asks whether Saba's sensitivity-proportional allocation keeps its win
// when the bottleneck *moves*. Five scenarios on BuildFatTree(k):
//
//   no-failure      healthy fabric (reference; also used for the static ECMP
//                   spread table below)
//   link-failure    one edge-agg link fails mid-run and is restored later;
//                   pinned flows crossing it re-route deterministically
//   switch-failure  one aggregation switch fails permanently, removing a
//                   quarter of the pod's uplink capacity
//   degrade         one agg-core link runs at 40% capacity for a window
//                   (asymmetric post-degradation bandwidth, no reroute)
//   oversubscribed  core links at half the edge capacity (persistent
//                   contention above the pods)
//
// Each scenario co-runs SABA_FIG13_JOBS catalog workloads under baseline,
// Saba, and ideal max-min; the table reports Saba's and ideal max-min's
// geometric-mean speedup over the baseline plus the flows Saba re-pinned.
// The ECMP table reports how the deterministic salt spreads one inter-pod
// pair across equal-cost paths and how a permutation traffic pattern loads
// the agg-core links.
//
// SABA_FIG13_K (default 4) sets the fat-tree arity (even, >= 4 so failures
// leave redundancy); SABA_FIG13_JOBS (default 6) the co-running job count.

#include <algorithm>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/exp/scenario.h"
#include "src/net/routing.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

struct Fig13Scenario {
  std::string name;
  std::string text;  // Scenario body without the policy line.
};

// Static ECMP diversity report on the healthy fabric: path spread for one
// inter-pod pair across salts, and agg-core link load under a permutation
// pattern (host i -> host (i + n/2) mod n, salt i).
void PrintEcmpTable(const FatTreeParams& params) {
  const Topology topo = BuildFatTree(params);
  Router router(&topo);
  const std::vector<NodeId> hosts = topo.Hosts();
  const int num_hosts = static_cast<int>(hosts.size());

  constexpr int kSalts = 64;
  std::set<std::vector<LinkId>> distinct_paths;
  for (uint64_t salt = 0; salt < kSalts; ++salt) {
    distinct_paths.insert(router.Route(hosts.front(), hosts.back(), salt));
  }

  std::vector<int> core_link_flows(topo.num_links(), 0);
  for (int i = 0; i < num_hosts; ++i) {
    const NodeId src = hosts[static_cast<size_t>(i)];
    const NodeId dst = hosts[static_cast<size_t>((i + num_hosts / 2) % num_hosts)];
    for (LinkId l : router.Route(src, dst, static_cast<uint64_t>(i))) {
      if (topo.node(topo.link(l).src).kind == NodeKind::kLeafSwitch &&
          topo.node(topo.link(l).dst).kind == NodeKind::kSpineSwitch) {
        core_link_flows[static_cast<size_t>(l)] += 1;
      }
    }
  }
  int up_links = 0;
  int max_load = 0;
  int total = 0;
  for (size_t l = 0; l < topo.num_links(); ++l) {
    if (topo.node(topo.link(static_cast<LinkId>(l)).src).kind == NodeKind::kLeafSwitch &&
        topo.node(topo.link(static_cast<LinkId>(l)).dst).kind == NodeKind::kSpineSwitch) {
      ++up_links;
      max_load = std::max(max_load, core_link_flows[l]);
      total += core_link_flows[l];
    }
  }
  const double mean_load = static_cast<double>(total) / up_links;

  TablePrinter table({"ECMP metric", "Value"});
  table.AddRow({"Distinct paths, one inter-pod pair (64 salts)",
                std::to_string(distinct_paths.size())});
  table.AddRow({"Agg-core links (up direction)", std::to_string(up_links)});
  table.AddRow({"Permutation flows per up-link (mean)", Fmt(mean_load)});
  table.AddRow({"Permutation flows per up-link (max)", std::to_string(max_load)});
  table.AddRow({"Hash imbalance (max / mean)",
                Fmt(mean_load > 0 ? max_load / mean_load : 0.0)});
  table.Print(std::cout);
}

void Run() {
  const uint64_t seed = EnvSeed();
  const int k = EnvInt("SABA_FIG13_K", 4);
  if (k < 4 || k % 2 != 0) {
    std::cerr << "SABA_FIG13_K must be even and >= 4 (failures need redundant paths)\n";
    std::exit(1);
  }
  const int num_jobs = EnvInt("SABA_FIG13_JOBS", 6);
  PrintBanner(std::cout, "Figure 13",
              "Saba vs ideal max-min speedup over the baseline on a k=" + std::to_string(k) +
                  " fat-tree under ECMP imbalance, link/switch failures, degradation, and an "
                  "oversubscribed core (" +
                  std::to_string(num_jobs) + " co-running jobs; SABA_FIG13_K/SABA_FIG13_JOBS).",
              seed);

  // Node-id layout of BuildFatTree: hosts first, then edge, agg, core tiers.
  const int num_hosts = k * k * k / 4;
  const NodeId edge0 = static_cast<NodeId>(num_hosts);
  const NodeId agg0 = static_cast<NodeId>(num_hosts + k * k / 2);
  const NodeId core0 = static_cast<NodeId>(num_hosts + k * k);

  const std::vector<std::string> kJobNames = {"LR", "PR", "Sort", "SQL",
                                              "WC", "NW", "RF",   "GBT"};
  const int nodes_per_job = std::max(2, num_hosts / 4);
  std::string job_lines;
  for (int j = 0; j < num_jobs; ++j) {
    job_lines += "job " + kJobNames[static_cast<size_t>(j) % kJobNames.size()] +
                 " nodes=" + std::to_string(nodes_per_job) +
                 " start=" + Fmt(0.5 * j, 1) + "\n";
  }
  const std::string fabric_line = "topology fattree k=" + std::to_string(k) + "\n";
  const std::string base = fabric_line + "queues 8\n" + job_lines;

  std::vector<Fig13Scenario> scenarios;
  scenarios.push_back({"no-failure", base});
  // Jobs run for minutes; the repairable faults hold for a few hundred
  // seconds so a meaningful fraction of each job sees the degraded fabric.
  scenarios.push_back({"link-failure",
                       base + "fail link a=" + std::to_string(edge0) +
                           " b=" + std::to_string(agg0) + " at=2.0 until=400.0\n"});
  scenarios.push_back(
      {"switch-failure", base + "fail switch id=" + std::to_string(agg0) + " at=2.0\n"});
  scenarios.push_back({"degrade", base + "degrade link a=" + std::to_string(agg0) +
                                      " b=" + std::to_string(core0) +
                                      " at=2.0 factor=0.4 until=600.0\n"});
  scenarios.push_back(
      {"oversubscribed",
       "topology fattree k=" + std::to_string(k) + " core_gbps=28\nqueues 8\n" + job_lines});

  // Profile the referenced workloads once (shared, read-only across cells).
  std::vector<WorkloadSpec> used;
  for (int j = 0; j < std::min<int>(num_jobs, static_cast<int>(kJobNames.size())); ++j) {
    const WorkloadSpec* spec = FindWorkload(kJobNames[static_cast<size_t>(j)]);
    assert(spec != nullptr);
    used.push_back(*spec);
  }
  ProfilerOptions profiler_options;
  profiler_options.seed = seed;
  const SensitivityTable table = OfflineProfiler(profiler_options).ProfileAll(used);

  const std::vector<PolicyKind> policies = {PolicyKind::kBaseline, PolicyKind::kSaba,
                                            PolicyKind::kIdealMaxMin};
  const size_t cells = scenarios.size() * policies.size();
  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("fig13 cells", cells, [&](size_t cell) {
        const Fig13Scenario& sc = scenarios[cell / policies.size()];
        std::string error;
        std::optional<Scenario> parsed = ParseScenario(sc.text, &error);
        if (!parsed.has_value()) {
          std::cerr << "fig13 scenario '" << sc.name << "': " << error << "\n";
          std::abort();
        }
        parsed->seed = seed;
        parsed->options.seed = seed;
        parsed->options.policy = policies[cell % policies.size()];
        return RunScenario(*parsed, table);
      });

  std::cout << "\nECMP diversity on the healthy k=" << k << " fat-tree:\n";
  PrintEcmpTable(FatTreeParams{k});

  std::cout << "\nSpeedup over the baseline (geometric mean across jobs):\n";
  TablePrinter table_out({"Scenario", "Saba", "Ideal max-min", "Saba rerouted flows"});
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const CoRunResult& baseline = runs[s * policies.size()];
    const CoRunResult& with_saba = runs[s * policies.size() + 1];
    const CoRunResult& with_ideal = runs[s * policies.size() + 2];
    table_out.AddRow({scenarios[s].name, Fmt(GeometricMean(Speedups(baseline, with_saba))),
                      Fmt(GeometricMean(Speedups(baseline, with_ideal))),
                      std::to_string(with_saba.rerouted_flows)});
    std::cerr << "[fig13] " << scenarios[s].name << " done (baseline makespan "
              << Fmt(baseline.makespan, 1) << " s)\n";
  }
  table_out.Print(std::cout);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
