// Figure 12: the overhead of a centralized controller — wall-clock time to
// compute the bandwidth shares of all applications for all switches.
//
// Methodology (§8.5): random scenarios with an active application set of
// size |A| in [1, 1000]; each application has 32 instances randomly placed
// on the 1,944-server fabric. The controller solves Eq 2 at every port that
// carries Saba connections; we report the calculation-time distribution for
// polynomial degrees k=1..3, bucketed into |A| <= 250 and 250 < |A| <= 1000.
//
// Paper (99th percentile): |A|<=250: 0.09 s / 0.16 s / 0.31 s for k=1/2/3;
// |A|<=1000: 0.43 s / 0.72 s / 1.13 s. Note: this implementation inverts
// the polynomial derivative in closed form (degree <= 3), so its absolute
// times are lower and flatter in k than NLopt's SLSQP; the |A| scaling is
// the reproduced quantity.
//
// SABA_SCENARIOS sets scenarios per degree (default 24; the paper uses
// 10,000 per degree). SABA_SOLVE_CACHE=0 disables the controller's
// signature-keyed solve cache (DESIGN.md §7.2) for A/B runs; the "state
// digest" lines printed per degree fingerprint the programmed switch state
// and must be byte-identical between cache-on and cache-off runs (the cache
// is an exactness-preserving memo) — scripts/check_repro.sh enforces this.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/controller.h"
#include "src/core/solve_cache.h"
#include "src/exp/report.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

// Exposes the static-registration path so scenario construction does not pay
// for per-registration K-means (the profiler performs the clustering offline
// in this experiment, as in §5.4).
class BenchController : public CentralizedController {
 public:
  using CentralizedController::CentralizedController;
  using CentralizedController::InstallPlModels;
  using CentralizedController::RegisterAppStatic;

  // FNV fingerprint of everything the controller programmed: per-port SL
  // tables, queue weights, and solved per-app weights, in ascending link
  // order. Pure function of the scenario (not of cache mode or job count).
  uint64_t StateDigest(const Network& network) const {
    uint64_t h = kFnvOffsetBasis;
    const size_t num_links = network.topology().num_links();
    for (LinkId link = 0; link < static_cast<LinkId>(num_links); ++link) {
      const PortConfig& port = network.port(link);
      h = HashBytes(h, port.sl_to_queue.data(), port.sl_to_queue.size() * sizeof(int));
      h = HashBytes(h, port.queue_weights.data(), port.queue_weights.size() * sizeof(double));
      auto it = port_weights_.find(link);
      if (it == port_weights_.end()) {
        continue;
      }
      for (const auto& [app, weight] : it->second) {
        // Field by field: pair<AppId, double> has padding bytes.
        h = HashBytes(h, &app, sizeof(app));
        h = HashBytes(h, &weight, sizeof(weight));
      }
    }
    return h;
  }
};

// Random convex decreasing polynomial of degree k in (1-b): slope, curvature
// and cubic term all non-negative keeps D convex and non-increasing in b.
SensitivityModel RandomModel(size_t degree, Rng* rng) {
  const double s = rng->Uniform(0.1, 4.0);
  const double q = degree >= 2 ? rng->Uniform(0.0, 3.0) : 0.0;
  const double c = degree >= 3 ? rng->Uniform(0.0, 2.0) : 0.0;
  // Expand 1 + s(1-b) + q(1-b)^2 + c(1-b)^3.
  return SensitivityModel{Polynomial({1 + s + q + c, -(s + 2 * q + 3 * c), q + 3 * c, -c})};
}

struct ScenarioResult {
  double seconds = 0;
  uint64_t digest = 0;
};

ScenarioResult RunScenario(const Topology& topo, int num_apps, size_t degree,
                           uint64_t scenario_seed, bool solve_cache) {
  Rng scenario_rng(scenario_seed);
  Rng* rng = &scenario_rng;
  EventScheduler scheduler;
  Network network(topo, /*default_queues=*/16);
  WfqMaxMinAllocator allocator;
  // A flow simulator defers port flushes; the scheduler is never run, so all
  // cost lands in the timed recompute below.
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  SensitivityTable table;  // Filled below with each app's drawn model.
  ControllerOptions options;
  options.num_pls = 8;
  options.solve_cache = solve_cache;
  options.seed = rng->Next();
  BenchController controller(&network, &flow_sim, &table, options);

  // Offline PL geometry over the scenario's models. Each app's model also
  // goes into the sensitivity table under its registration name: Eq 2 must
  // solve the scenario's degree-k polynomials, not a default model per app.
  std::vector<SensitivityModel> models;
  for (int a = 0; a < num_apps; ++a) {
    models.push_back(RandomModel(degree, rng));
    SensitivityEntry entry;
    entry.model = models.back();
    table.Put("app" + std::to_string(a), entry);
  }
  Rng cluster_rng(rng->Next());
  const PlMapping mapping = MapAppsToPls(models, options.num_pls, &cluster_rng);
  controller.InstallPlModels(mapping.pl_models);

  const std::vector<NodeId> hosts = network.topology().Hosts();
  for (int a = 0; a < num_apps; ++a) {
    controller.RegisterAppStatic(a, "app" + std::to_string(a), mapping.app_to_pl[a]);
    // 32 instances, ring connections with fanout 4 (as in §8.5's scenarios).
    std::vector<NodeId> placement;
    for (int i = 0; i < 32; ++i) {
      placement.push_back(rng->Choice(hosts));
    }
    for (int i = 0; i < 32; ++i) {
      for (int k = 1; k <= 4; ++k) {
        const NodeId src = placement[static_cast<size_t>(i)];
        const NodeId dst = placement[static_cast<size_t>((i + k) % 32)];
        if (src != dst) {
          controller.ConnCreate(a, src, dst, static_cast<uint64_t>(a * 1000 + i * 8 + k));
        }
      }
    }
  }
  // The Fig 12 quantity: recompute Eq 2 + queue mapping for every active port.
  ScenarioResult result;
  result.seconds = controller.RecomputeAllPortsTimed();
  result.digest = controller.StateDigest(network);
  return result;
}

void Run() {
  const uint64_t seed = EnvSeed();
  const int scenarios = EnvInt("SABA_SCENARIOS", 24);
  const bool solve_cache = EnvInt("SABA_SOLVE_CACHE", 1) != 0;
  PrintBanner(std::cout, "Figure 12",
              "Centralized-controller calculation time over random scenarios (|A| in "
              "[1, 1000], 32 instances each, spine-leaf fabric); " +
                  std::to_string(scenarios) +
                  " scenarios per polynomial degree (SABA_SCENARIOS to change; paper uses "
                  "10,000).",
              seed);

  const Topology topo = BuildSpineLeaf(SpineLeafParams{});

  // Scenario parameters are drawn serially from one stream per degree; each
  // scenario then runs from its own split-off seed, so the construction cost
  // can fan across the sweep pool. Note that this bench measures wall-clock
  // solver time: run it with SABA_JOBS=1 when the absolute timing
  // distribution matters (parallel scenarios contend for cores and inflate
  // the tails; the |A| scaling shape survives either way).
  if (SweepRunner().jobs() > 1) {
    std::cerr << "[fig12] note: timings taken with SABA_JOBS>1; use SABA_JOBS=1 for a "
                 "contention-free timing distribution\n";
  }
  struct Scenario {
    size_t degree;
    int num_apps;
    uint64_t seed;
  };
  std::vector<Scenario> grid;
  for (size_t degree : {1u, 2u, 3u}) {
    Rng rng(seed + degree);
    for (int s = 0; s < scenarios; ++s) {
      // Log-uniform |A| so both buckets are populated.
      const int num_apps =
          static_cast<int>(std::exp(rng.Uniform(0.0, std::log(1000.0)))) + 1;
      grid.push_back({degree, num_apps, rng.Next()});
    }
  }
  const std::vector<ScenarioResult> results =
      RunSweep<ScenarioResult>("fig12 scenarios", grid.size(), [&](size_t g) {
        return RunScenario(topo, grid[g].num_apps, grid[g].degree, grid[g].seed, solve_cache);
      });

  TablePrinter table({"|A| bucket", "k", "p50 s", "p90 s", "p99/max s", "scenarios"});
  for (size_t degree : {1u, 2u, 3u}) {
    std::vector<double> small_bucket;
    std::vector<double> large_bucket;
    for (size_t g = 0; g < grid.size(); ++g) {
      if (grid[g].degree == degree) {
        (grid[g].num_apps <= 250 ? small_bucket : large_bucket).push_back(results[g].seconds);
      }
    }
    for (auto* bucket : {&small_bucket, &large_bucket}) {
      if (bucket->empty()) {
        continue;
      }
      table.AddRow({bucket == &small_bucket ? "|A| <= 250" : "250 < |A| <= 1000",
                    std::to_string(degree), Fmt(Percentile(*bucket, 50), 4),
                    Fmt(Percentile(*bucket, 90), 4), Fmt(Percentile(*bucket, 99), 4),
                    std::to_string(bucket->size())});
    }
  }
  table.Print(std::cout);
  std::cout << "(paper 99th: |A|<=250: 0.09/0.16/0.31 s; |A|<=1000: 0.43/0.72/1.13 s for "
               "k=1/2/3)\n";
  // Deterministic fingerprints of the programmed switch state, one per
  // degree (scenario digests combined in grid order). Invariant across
  // SABA_JOBS and SABA_SOLVE_CACHE — only the timing table above may move.
  for (size_t degree : {1u, 2u, 3u}) {
    uint64_t combined = kFnvOffsetBasis;
    for (size_t g = 0; g < grid.size(); ++g) {
      if (grid[g].degree == degree) {
        combined = HashBytes(combined, &results[g].digest, sizeof(results[g].digest));
      }
    }
    char line[64];
    std::snprintf(line, sizeof(line), "state digest k=%zu: %016llx", degree,
                  static_cast<unsigned long long>(combined));
    std::cout << line << '\n';
  }
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
