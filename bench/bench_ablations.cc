// Design-choice ablations (beyond the paper's figures), backing the choices
// called out in DESIGN.md:
//   1. Eq-2 solver path: closed-form dual bisection vs projected gradient
//      (quality and cost on the real catalog models).
//   2. The relative weight floor (WRR-granularity guarantee): how the skew
//      budget trades sensitive-job gains against insensitive-job damage.
//   3. The FECN congestion-inefficiency strength (gamma).
//   4. Completion-event quantization: accuracy vs reallocation count.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/weight_solver.h"
#include "src/exp/cluster_setup.h"
#include "src/exp/corun.h"
#include "src/exp/report.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/sim/wallclock.h"

namespace saba {
namespace {

std::vector<JobSpec> StandardSetup(uint64_t seed) {
  Rng rng(seed);
  ClusterSetupOptions options;
  return GenerateClusterSetup(HiBenchCatalog(), options, &rng);
}

void SolverAblation(const SensitivityTable& table) {
  std::cout << "--- Ablation 1: Eq-2 solver path on catalog models ---\n";
  std::vector<SensitivityModel> models;
  for (const auto& [name, entry] : table.entries()) {
    models.push_back(entry.model);
  }
  // Convex/dual path (production).
  WeightSolver solver;
  Rng rng(3);
  Stopwatch watch;
  WeightSolverResult dual;
  constexpr int kReps = 200;
  for (int i = 0; i < kReps; ++i) {
    dual = solver.Solve(models, &rng);
  }
  const double dual_us = watch.ElapsedSeconds() / kReps * 1e6;

  // Force projected gradient by adding a negligible degree-4 term.
  std::vector<SensitivityModel> degree4;
  for (const SensitivityModel& m : models) {
    std::vector<double> coeffs = m.polynomial().coefficients();
    coeffs.resize(5, 0.0);
    coeffs[4] += 1e-9;
    degree4.push_back(SensitivityModel{Polynomial(coeffs)});
  }
  watch.Reset();
  WeightSolverResult pg;
  for (int i = 0; i < 20; ++i) {
    pg = solver.Solve(degree4, &rng);
  }
  const double pg_us = watch.ElapsedSeconds() / 20 * 1e6;

  TablePrinter out({"Path", "Objective (sum D_i)", "us/solve"});
  out.AddRow({"dual bisection (closed form)", Fmt(dual.objective, 4), Fmt(dual_us, 1)});
  out.AddRow({"projected gradient", Fmt(pg.objective, 4), Fmt(pg_us, 1)});
  out.Print(std::cout);
  std::cout << '\n';
}

void FloorAblation(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Ablation 2: relative weight floor (skew budget) ---\n";
  const Topology topo = BuildSingleSwitchStar(32, Gbps64(56));
  const std::vector<JobSpec> jobs = StandardSetup(seed);
  const std::vector<double> floors = {0.25, 0.5, 0.75, 0.9, 1.0};

  // Task 0 is the shared baseline, tasks 1.. the floors.
  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("ablation floors", floors.size() + 1, [&](size_t t) {
        CoRunOptions options;
        if (t == 0) {
          options.policy = PolicyKind::kBaseline;
        } else {
          options.policy = PolicyKind::kSaba;
          options.table = &table;
          options.relative_min_weight = floors[t - 1];
          options.seed = seed;
        }
        return RunCoRun(topo, jobs, options);
      });

  TablePrinter out({"Floor", "Avg speedup", "Best job", "Worst job"});
  for (size_t f = 0; f < floors.size(); ++f) {
    const std::vector<double> speedups = Speedups(runs[0], runs[f + 1]);
    out.AddRow({Fmt(floors[f]), Fmt(GeometricMean(speedups)), Fmt(Max(speedups)),
                Fmt(Min(speedups))});
  }
  out.Print(std::cout);
  std::cout << "(floor 1.0 disables the sensitivity skew entirely; the default 0.75 is the "
               "calibrated operating point)\n\n";
}

void GammaAblation(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Ablation 3: FECN inefficiency strength (gamma) ---\n";
  const Topology topo = BuildSingleSwitchStar(32, Gbps64(56));
  const std::vector<JobSpec> jobs = StandardSetup(seed);
  const std::vector<double> gammas = {0.0, 0.1, 0.25, 0.4};
  // Tasks are (gamma, policy) pairs: even = baseline, odd = Saba.
  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("ablation gammas", gammas.size() * 2, [&](size_t t) {
        const double gamma = gammas[t / 2];
        CoRunOptions options;
        options.fecn_gamma = gamma;
        if (t % 2 == 0) {
          options.policy = PolicyKind::kBaseline;
        } else {
          options.policy = PolicyKind::kSaba;
          options.table = &table;
          options.seed = seed;
        }
        return RunCoRun(topo, jobs, options);
      });
  TablePrinter out({"gamma", "Saba avg speedup over baseline"});
  for (size_t g = 0; g < gammas.size(); ++g) {
    out.AddRow({Fmt(gammas[g]), Fmt(GeometricMean(Speedups(runs[2 * g], runs[2 * g + 1])))});
  }
  out.Print(std::cout);
  std::cout << "(gamma 0 isolates the pure scheduling gain: Saba's win without any protocol-"
               "efficiency recovery)\n\n";
}

void QuantumAblation(uint64_t seed) {
  std::cout << "--- Ablation 4: completion-event quantization ---\n";
  const Topology topo = BuildSingleSwitchStar(32, Gbps64(56));
  const std::vector<JobSpec> jobs = StandardSetup(seed);

  // Task 0 is the exact (quantum 0) reference, tasks 1.. the grid sizes.
  const std::vector<double> quanta = {0.0, 0.1, 0.25, 1.0};
  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("ablation quanta", quanta.size() + 1, [&](size_t t) {
        CoRunOptions options;
        options.policy = PolicyKind::kBaseline;
        options.completion_quantum = t == 0 ? 0 : quanta[t - 1];
        return RunCoRun(topo, jobs, options);
      });
  const CoRunResult& exact = runs[0];

  TablePrinter out({"Quantum s", "Allocator runs", "Max completion error %"});
  for (size_t q = 0; q < quanta.size(); ++q) {
    const CoRunResult& result = runs[q + 1];
    double worst = 0;
    for (size_t j = 0; j < jobs.size(); ++j) {
      worst = std::max(worst, std::fabs(result.completion_seconds[j] -
                                        exact.completion_seconds[j]) /
                                  exact.completion_seconds[j]);
    }
    out.AddRow({Fmt(quanta[q]), std::to_string(result.allocator_runs), Fmt(worst * 100, 2)});
  }
  out.Print(std::cout);
}

void PolicyComparison(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Ablation 5: every policy on the standard 16-job setup ---\n";
  const Topology topo = BuildSingleSwitchStar(32, Gbps64(56));
  const std::vector<JobSpec> jobs = StandardSetup(seed);
  const std::vector<PolicyKind> policies = {
      PolicyKind::kBaseline,  PolicyKind::kSaba, PolicyKind::kSabaUnlimited,
      PolicyKind::kIdealMaxMin, PolicyKind::kHoma, PolicyKind::kPFabric,
      PolicyKind::kSincronia};
  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("ablation policies", policies.size(), [&](size_t p) {
        CoRunOptions options;
        options.policy = policies[p];
        if (policies[p] != PolicyKind::kBaseline) {
          options.table = &table;
          options.seed = seed;
        }
        return RunCoRun(topo, jobs, options);
      });
  TablePrinter out({"Policy", "Avg speedup over baseline"});
  for (size_t p = 1; p < policies.size(); ++p) {
    out.AddRow({PolicyName(policies[p]), Fmt(GeometricMean(Speedups(runs[0], runs[p])))});
  }
  out.Print(std::cout);
  std::cout << "(pFabric is a related-work addition beyond the paper's figures)\n";
}

void Run() {
  const uint64_t seed = EnvSeed();
  PrintBanner(std::cout, "Ablations",
              "Design-choice studies: solver path, weight floor, congestion model, event "
              "quantization, and a full policy comparison.",
              seed);
  const SensitivityTable table = ProfileCatalog(seed);
  SolverAblation(table);
  FloorAblation(table, seed);
  GammaAblation(table, seed);
  QuantumAblation(seed);
  PolicyComparison(table, seed);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
