// Figure 10: the large-scale simulation — Saba vs ideal max-min vs Homa vs
// Sincronia, all reported as speedup over the InfiniBand baseline, on the
// 1,944-server spine-leaf fabric with 20 synthetic workloads x 97 instances.
//
// Paper: Saba averages 1.27x (max 1.79x, worst-case -3%), ideal max-min
// 1.14x, Homa 1.12x, Sincronia 1.19x.
//
// SABA_FIG10_INSTANCES scales the per-workload instance count (default 97).

#include <iostream>
#include <map>
#include <vector>

#include "bench/sim_cluster.h"
#include "src/exp/report.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

void Run() {
  const uint64_t seed = EnvSeed();
  SimClusterConfig config;
  config.seed = seed;
  config.instances_per_workload = EnvInt("SABA_FIG10_INSTANCES", 97);
  PrintBanner(std::cout, "Figure 10",
              "Speedup over the baseline for Saba, ideal max-min, Homa, and Sincronia on the "
              "1,944-server spine-leaf simulation (" +
                  std::to_string(config.instances_per_workload) +
                  " instances per workload; SABA_FIG10_INSTANCES to change).",
              seed);

  const SimCluster cluster = BuildSimCluster(config);

  // One sweep task per policy; each is a full-fabric co-run.
  const std::vector<PolicyKind> policies = {PolicyKind::kBaseline, PolicyKind::kSaba,
                                            PolicyKind::kIdealMaxMin, PolicyKind::kHoma,
                                            PolicyKind::kSincronia};
  const std::vector<CoRunResult> runs =
      RunSweep<CoRunResult>("fig10 policies", policies.size(), [&](size_t p) {
        CoRunOptions options;
        options.policy = policies[p];
        options.table = &cluster.table;
        options.num_pls = 16;  // The simulated fabric exposes all 16 InfiniBand SLs (§8.1).
        // The flit simulator's FECN is far better behaved than the ConnectX-3
        // testbed's: calibrated so ideal max-min's edge over the simulated
        // baseline lands in the paper's regime (EXPERIMENTS.md).
        options.fecn_gamma = 0.15;
        options.seed = seed;
        return RunCoRun(cluster.topology, cluster.jobs, options);
      });
  std::map<PolicyKind, CoRunResult> results;
  for (size_t p = 0; p < policies.size(); ++p) {
    results[policies[p]] = runs[p];
    std::cerr << "[fig10] " << PolicyName(policies[p]) << " done (makespan "
              << Fmt(runs[p].makespan, 0) << " s)\n";
  }

  const CoRunResult& baseline = results[PolicyKind::kBaseline];
  TablePrinter table({"Workload", "Saba", "Ideal max-min", "Homa", "Sincronia"});
  std::map<PolicyKind, std::vector<double>> speedups;
  for (PolicyKind policy :
       {PolicyKind::kSaba, PolicyKind::kIdealMaxMin, PolicyKind::kHoma, PolicyKind::kSincronia}) {
    speedups[policy] = Speedups(baseline, results[policy]);
  }
  for (size_t j = 0; j < cluster.jobs.size(); ++j) {
    table.AddRow({cluster.workloads[j].name, Fmt(speedups[PolicyKind::kSaba][j]),
                  Fmt(speedups[PolicyKind::kIdealMaxMin][j]),
                  Fmt(speedups[PolicyKind::kHoma][j]),
                  Fmt(speedups[PolicyKind::kSincronia][j])});
  }
  table.AddRow({"Average", Fmt(GeometricMean(speedups[PolicyKind::kSaba])),
                Fmt(GeometricMean(speedups[PolicyKind::kIdealMaxMin])),
                Fmt(GeometricMean(speedups[PolicyKind::kHoma])),
                Fmt(GeometricMean(speedups[PolicyKind::kSincronia]))});
  table.AddRow({"(paper)", "1.27", "1.14", "1.12", "1.19"});
  table.Print(std::cout);
  std::cout << "Saba max speedup: " << Fmt(Max(speedups[PolicyKind::kSaba]))
            << " (paper 1.79), worst case: " << Fmt(Min(speedups[PolicyKind::kSaba]))
            << " (paper 0.97)\n";
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
