// Figure 8: the main testbed experiment.
//
// (a) Per-workload speedup of Saba over the InfiniBand baseline across
//     randomized cluster setups: 32 servers, 16 jobs drawn with replacement,
//     random dataset scale (0.1x/1x/10x) and instance count (0.5x-4x of the
//     8-node profile), placement constrained to one instance per job per
//     server and at most 16 jobs per server (§8.2).
//     Paper: RF 3.9x, LR 3.6x, Sort -5%, PR -1%, average 1.88x.
// (b) CDF of the per-setup average speedup.
//     Paper: range 0.94x-2.92x; only 2 of 500 setups below 1.
//
// SABA_SETUPS sets the setup count (default 100; the paper uses 500).

#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "src/exp/cluster_setup.h"
#include "src/exp/corun.h"
#include "src/exp/report.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

struct SetupOutcome {
  std::vector<std::string> workloads;  // Per job.
  std::vector<double> speedups;        // Per job: baseline / saba.
};

void Run() {
  const uint64_t seed = EnvSeed();
  const int num_setups = EnvInt("SABA_SETUPS", 100);
  PrintBanner(std::cout, "Figure 8",
              "Saba vs InfiniBand baseline over " + std::to_string(num_setups) +
                  " randomized 16-job cluster setups on 32 servers (SABA_SETUPS to change; "
                  "paper uses 500).",
              seed);

  const SensitivityTable table = ProfileCatalog(seed);
  const Topology topo = BuildSingleSwitchStar(32, Gbps64(56));

  // Pre-generate the setups from one deterministic stream, then execute them
  // across the sweep pool (setups are independent simulations).
  std::vector<std::vector<JobSpec>> setups;
  {
    Rng rng(seed);
    ClusterSetupOptions options;
    for (int s = 0; s < num_setups; ++s) {
      setups.push_back(GenerateClusterSetup(HiBenchCatalog(), options, &rng));
    }
  }

  const std::vector<SetupOutcome> outcomes =
      RunSweep<SetupOutcome>("fig8 setups", setups.size(), [&](size_t s) {
        CoRunOptions baseline_options;
        baseline_options.policy = PolicyKind::kBaseline;
        const CoRunResult baseline = RunCoRun(topo, setups[s], baseline_options);

        CoRunOptions saba_options;
        saba_options.policy = PolicyKind::kSaba;
        saba_options.table = &table;
        saba_options.seed = seed + s;
        const CoRunResult saba = RunCoRun(topo, setups[s], saba_options);

        SetupOutcome outcome;
        outcome.speedups = Speedups(baseline, saba);
        for (const JobSpec& job : setups[s]) {
          outcome.workloads.push_back(job.spec.name);
        }
        return outcome;
      });

  // ---- Fig 8a: per-workload geometric-mean speedup --------------------------
  std::map<std::string, std::vector<double>> per_workload;
  std::vector<double> setup_averages;
  for (const SetupOutcome& outcome : outcomes) {
    for (size_t j = 0; j < outcome.speedups.size(); ++j) {
      per_workload[outcome.workloads[j]].push_back(outcome.speedups[j]);
    }
    setup_averages.push_back(GeometricMean(outcome.speedups));
  }

  std::cout << "--- Fig 8a: speedup of workloads with Saba over the baseline ---\n";
  const std::map<std::string, const char*> paper = {
      {"LR", "3.6"}, {"RF", "3.9"},  {"GBT", "high"}, {"SVM", "high"}, {"NI", "mid"},
      {"NW", "mid"}, {"PR", "0.99"}, {"SQL", "mid"},  {"WC", "mid"},   {"Sort", "0.95"}};
  TablePrinter table_a({"Workload", "Jobs", "Geomean speedup", "Min", "Max", "Paper"});
  std::vector<double> all;
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    const auto it = per_workload.find(spec.name);
    if (it == per_workload.end()) {
      continue;
    }
    const std::vector<double>& xs = it->second;
    all.insert(all.end(), xs.begin(), xs.end());
    table_a.AddRow({spec.name, std::to_string(xs.size()), Fmt(GeometricMean(xs)),
                    Fmt(Min(xs)), Fmt(Max(xs)), paper.at(spec.name)});
  }
  table_a.Print(std::cout);
  std::cout << "average speedup across all jobs: " << Fmt(GeometricMean(all))
            << "  (paper: 1.88)\n\n";

  // ---- Fig 8b: CDF of per-setup average speedup -----------------------------
  std::cout << "--- Fig 8b: CDF of the average speedup per cluster setup ---\n";
  TablePrinter table_b({"Percentile", "Avg speedup"});
  for (double p : {0.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 100.0}) {
    table_b.AddRow({Fmt(p, 0), Fmt(Percentile(setup_averages, p))});
  }
  table_b.Print(std::cout);
  int below_one = 0;
  for (double avg : setup_averages) {
    below_one += avg < 1.0 ? 1 : 0;
  }
  std::cout << "setups with average slowdown: " << below_one << " of " << setup_averages.size()
            << "  (paper: 2 of 500; range 0.94-2.92)\n";
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
