// Shared setup for the large-scale simulation benches (Figures 10 and 11):
// the 1,944-server spine-leaf fabric, the 20 synthetic workloads profiled on
// an 18-node rack, and the random placement of 97 instances per workload
// (§8.1, §8.4).

#ifndef BENCH_SIM_CLUSTER_H_
#define BENCH_SIM_CLUSTER_H_

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/exp/corun.h"
#include "src/net/units.h"
#include "src/workload/workload_catalog.h"

namespace saba {

struct SimClusterConfig {
  int num_workloads = 20;
  // Instances per workload; the paper runs 97 on 1,944 servers. SABA_FIG10_INSTANCES
  // scales this down for quick passes.
  int instances_per_workload = 97;
  SpineLeafParams fabric;  // Defaults are the paper's 54/102/108/18 fabric.
  uint64_t seed = 42;
};

struct SimCluster {
  Topology topology;
  std::vector<WorkloadSpec> workloads;
  std::vector<JobSpec> jobs;
  SensitivityTable table;
};

inline SimCluster BuildSimCluster(const SimClusterConfig& config) {
  SimCluster cluster;
  cluster.topology = BuildSpineLeaf(config.fabric);

  Rng rng(config.seed);
  cluster.workloads =
      GenerateSyntheticWorkloads(static_cast<size_t>(config.num_workloads), &rng);

  // Profile each synthetic workload on a rack-scale (18-node) deployment.
  ProfilerOptions profiler_options;
  profiler_options.num_nodes = config.fabric.hosts_per_tor;
  profiler_options.seed = config.seed;
  OfflineProfiler profiler(profiler_options);
  cluster.table = profiler.ProfileAll(cluster.workloads);

  // Each server runs at most one workload instance; instances are spread
  // randomly across the fabric (§8.1).
  std::vector<NodeId> servers = cluster.topology.Hosts();
  rng.Shuffle(&servers);
  const size_t needed = static_cast<size_t>(config.num_workloads) *
                        static_cast<size_t>(config.instances_per_workload);
  assert(needed <= servers.size() && "fabric too small for the instance count");
  size_t cursor = 0;
  for (const WorkloadSpec& spec : cluster.workloads) {
    JobSpec job;
    job.spec = ScaleWorkload(spec, 1.0, config.instances_per_workload);
    for (int i = 0; i < config.instances_per_workload; ++i) {
      job.hosts.push_back(servers[cursor++]);
    }
    job.start_at = rng.Uniform(0, 5.0);
    cluster.jobs.push_back(std::move(job));
  }
  return cluster;
}

}  // namespace saba

#endif  // BENCH_SIM_CLUSTER_H_
