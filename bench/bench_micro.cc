// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
// the WFQ fluid allocator, the Eq-2 weight solver, clustering, and routing.
// These back the performance claims in DESIGN.md (allocator cost linear-ish
// in flow count; closed-form solver microseconds per port).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/pl_mapper.h"
#include "src/core/queue_mapper.h"
#include "src/core/weight_solver.h"
#include "src/exp/sweep_runner.h"
#include "src/net/allocator.h"
#include "src/net/routing.h"
#include "src/net/units.h"
#include "src/numerics/kmeans.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

SensitivityModel RandomConvexModel(Rng* rng) {
  const double s = rng->Uniform(0.1, 4.0);
  const double q = rng->Uniform(0.0, 3.0);
  const double c = rng->Uniform(0.0, 2.0);
  return SensitivityModel{Polynomial({1 + s + q + c, -(s + 2 * q + 3 * c), q + 3 * c, -c})};
}

// --- WFQ allocator vs flow count on the big fabric ---------------------------

struct AllocatorFixture {
  AllocatorFixture(int num_flows, int num_apps)
      : network(BuildSpineLeaf(SpineLeafParams{}), 8) {
    Rng rng(7);
    const std::vector<NodeId> hosts = network.topology().Hosts();
    for (int f = 0; f < num_flows; ++f) {
      auto flow = std::make_unique<ActiveFlow>();
      flow->id = f;
      flow->app = static_cast<AppId>(f % num_apps);
      flow->sl = f % 8;
      flow->remaining_bits = Gigabytes(1);
      NodeId src = rng.Choice(hosts);
      NodeId dst = rng.Choice(hosts);
      while (dst == src) {
        dst = rng.Choice(hosts);
      }
      flow->path = &network.router().Route(src, dst, static_cast<uint64_t>(f));
      flows.push_back(std::move(flow));
      raw.push_back(flows.back().get());
    }
  }

  Network network;
  std::vector<std::unique_ptr<ActiveFlow>> flows;
  std::vector<ActiveFlow*> raw;
};

void BM_WfqAllocator(benchmark::State& state) {
  AllocatorFixture fixture(static_cast<int>(state.range(0)), 20);
  WfqMaxMinAllocator allocator;
  for (auto _ : state) {
    allocator.Allocate(fixture.raw, fixture.network);
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfqAllocator)->Arg(100)->Arg(1000)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_PerAppAllocator(benchmark::State& state) {
  AllocatorFixture fixture(static_cast<int>(state.range(0)), 20);
  PerAppWfqAllocator allocator;
  for (auto _ : state) {
    allocator.Allocate(fixture.raw, fixture.network);
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PerAppAllocator)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_StrictPriorityAllocator(benchmark::State& state) {
  AllocatorFixture fixture(static_cast<int>(state.range(0)), 20);
  for (size_t i = 0; i < fixture.raw.size(); ++i) {
    fixture.raw[i]->priority = static_cast<int>(i % 8);
  }
  StrictPriorityAllocator allocator;
  for (auto _ : state) {
    allocator.Allocate(fixture.raw, fixture.network);
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrictPriorityAllocator)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

// --- Eq 2 weight solver vs application count ---------------------------------

void BM_WeightSolverConvex(benchmark::State& state) {
  Rng rng(11);
  std::vector<SensitivityModel> models;
  for (int64_t i = 0; i < state.range(0); ++i) {
    models.push_back(RandomConvexModel(&rng));
  }
  WeightSolver solver;
  Rng solve_rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(models, &solve_rng).objective);
  }
}
BENCHMARK(BM_WeightSolverConvex)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_WeightSolverProjectedGradient(benchmark::State& state) {
  // Degree-4 models force the generic path.
  Rng rng(17);
  std::vector<SensitivityModel> models;
  for (int64_t i = 0; i < state.range(0); ++i) {
    const SensitivityModel base = RandomConvexModel(&rng);
    std::vector<double> coeffs = base.polynomial().coefficients();
    coeffs.resize(5, 0.0);
    coeffs[4] = 0.01;
    models.push_back(SensitivityModel{Polynomial(coeffs)});
  }
  WeightSolver solver;
  Rng solve_rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(models, &solve_rng).objective);
  }
}
BENCHMARK(BM_WeightSolverProjectedGradient)->Arg(2)->Arg(8)->Arg(32);

// --- Clustering ---------------------------------------------------------------

void BM_PlMapping(benchmark::State& state) {
  Rng rng(23);
  std::vector<SensitivityModel> models;
  for (int64_t i = 0; i < state.range(0); ++i) {
    models.push_back(RandomConvexModel(&rng));
  }
  for (auto _ : state) {
    Rng cluster_rng(29);
    benchmark::DoNotOptimize(MapAppsToPls(models, 8, &cluster_rng).pl_models.size());
  }
}
BENCHMARK(BM_PlMapping)->Arg(16)->Arg(100)->Arg(1000);

void BM_QueueMapperPort(benchmark::State& state) {
  Rng rng(31);
  std::vector<SensitivityModel> pls;
  for (int i = 0; i < 16; ++i) {
    pls.push_back(RandomConvexModel(&rng));
  }
  QueueMapper mapper(pls);
  const std::vector<int> present = {0, 2, 3, 5, 7, 8, 11, 13, 14, 15};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.MapPort(present, static_cast<int>(state.range(0))).level);
  }
}
BENCHMARK(BM_QueueMapperPort)->Arg(2)->Arg(4)->Arg(8);

// --- Sweep engine --------------------------------------------------------------

// Per-task overhead of the deterministic sweep pool: trivial tasks, so the
// measured cost is claim + seed-split + collection, not work.
void BM_SweepRunnerOverhead(benchmark::State& state) {
  SweepRunner runner(static_cast<int>(state.range(0)));
  constexpr size_t kTasks = 1024;
  for (auto _ : state) {
    const std::vector<uint64_t> out = runner.Map<uint64_t>(
        kTasks, [](size_t i) { return Rng::StreamSeed(42, i); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_SweepRunnerOverhead)->Arg(1)->Arg(2)->Arg(4);

// Scaling on compute-bound tasks shaped like the figure sweeps (independent
// seeded simulation cells): wall time should drop ~linearly in the argument
// up to the hardware thread count.
void BM_SweepRunnerScaling(benchmark::State& state) {
  SweepRunner runner(static_cast<int>(state.range(0)));
  constexpr size_t kTasks = 64;
  for (auto _ : state) {
    const std::vector<double> out = runner.MapSeeded<double>(
        kTasks, 42, [](size_t, Rng* rng) {
          double acc = 0;
          for (int i = 0; i < 50000; ++i) {
            acc += rng->Uniform01();
          }
          return acc;
        });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_SweepRunnerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Routing -------------------------------------------------------------------

void BM_RouterColdPath(benchmark::State& state) {
  const Topology topo = BuildSpineLeaf(SpineLeafParams{});
  Router router(&topo);
  Rng rng(37);
  const std::vector<NodeId> hosts = topo.Hosts();
  uint64_t salt = 0;
  for (auto _ : state) {
    // Fresh salt each time: exercises path computation, not the cache.
    benchmark::DoNotOptimize(router.Route(rng.Choice(hosts), rng.Choice(hosts) / 2, ++salt));
  }
}
BENCHMARK(BM_RouterColdPath);

void BM_RouterCachedPath(benchmark::State& state) {
  const Topology topo = BuildSpineLeaf(SpineLeafParams{});
  Router router(&topo);
  router.Route(0, 1900, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Route(0, 1900, 5).size());
  }
}
BENCHMARK(BM_RouterCachedPath);

}  // namespace
}  // namespace saba

BENCHMARK_MAIN();
