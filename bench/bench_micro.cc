// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
// the WFQ fluid allocator (steady-state and incremental churn), the Eq-2
// weight solver, clustering, and routing. These back the performance claims
// in DESIGN.md (allocator cost linear-ish in flow count; closed-form solver
// microseconds per port).
//
// Besides the console output, the run writes a machine-readable summary to
// BENCH_micro.json (override the path with SABA_BENCH_JSON) so successive
// PRs can track the perf trajectory; see EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/distributed_controller.h"
#include "src/core/pl_mapper.h"
#include "src/core/queue_mapper.h"
#include "src/core/weight_solver.h"
#include "src/exp/knobs.h"
#include "src/exp/sweep_runner.h"
#include "src/net/allocation_engine.h"
#include "src/net/allocator.h"
#include "src/net/routing.h"
#include "src/net/units.h"
#include "src/numerics/kmeans.h"
#include "src/sim/rng.h"

namespace saba {
namespace {

SensitivityModel RandomConvexModel(Rng* rng) {
  const double s = rng->Uniform(0.1, 4.0);
  const double q = rng->Uniform(0.0, 3.0);
  const double c = rng->Uniform(0.0, 2.0);
  return SensitivityModel{Polynomial({1 + s + q + c, -(s + 2 * q + 3 * c), q + 3 * c, -c})};
}

// --- WFQ allocator vs flow count on the big fabric ---------------------------

struct AllocatorFixture {
  AllocatorFixture(int num_flows, int num_apps)
      : network(BuildSpineLeaf(SpineLeafParams{}), 8) {
    Rng rng(7);
    const std::vector<NodeId> hosts = network.topology().Hosts();
    for (int f = 0; f < num_flows; ++f) {
      auto flow = std::make_unique<ActiveFlow>();
      flow->id = f;
      flow->app = static_cast<AppId>(f % num_apps);
      flow->sl = f % 8;
      flow->remaining_bits = Gigabytes(1);
      NodeId src = rng.Choice(hosts);
      NodeId dst = rng.Choice(hosts);
      while (dst == src) {
        dst = rng.Choice(hosts);
      }
      flow->path = &network.router().Route(src, dst, static_cast<uint64_t>(f));
      flows.push_back(std::move(flow));
      raw.push_back(flows.back().get());
    }
  }

  Network network;
  std::vector<std::unique_ptr<ActiveFlow>> flows;
  std::vector<ActiveFlow*> raw;
};

void BM_WfqAllocator(benchmark::State& state) {
  AllocatorFixture fixture(static_cast<int>(state.range(0)), 20);
  WfqMaxMinAllocator allocator;
  for (auto _ : state) {
    allocator.Allocate(fixture.raw, fixture.network);
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfqAllocator)->Arg(100)->Arg(1000)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_PerAppAllocator(benchmark::State& state) {
  AllocatorFixture fixture(static_cast<int>(state.range(0)), 20);
  PerAppWfqAllocator allocator;
  for (auto _ : state) {
    allocator.Allocate(fixture.raw, fixture.network);
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PerAppAllocator)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_StrictPriorityAllocator(benchmark::State& state) {
  AllocatorFixture fixture(static_cast<int>(state.range(0)), 20);
  for (size_t i = 0; i < fixture.raw.size(); ++i) {
    fixture.raw[i]->priority = static_cast<int>(i % 8);
  }
  StrictPriorityAllocator allocator;
  for (auto _ : state) {
    allocator.Allocate(fixture.raw, fixture.network);
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrictPriorityAllocator)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

// --- Flow churn: incremental engine vs full rebuild --------------------------

// A large stable background with the locality real co-runs have: most flows
// are rack-local pairs (jobs place communicating workers on adjacent hosts),
// plus a few cross-ToR flows per pod that couple the pod's uplinks. The
// resulting link-sharing graph decomposes into many small components, which
// is exactly the structure the incremental engine exploits. The churn event
// is a single cross-ToR flow arriving and departing against that background —
// the dominant event shape at co-run scale.
struct ChurnFixture {
  // `flows_per_rack` scales the per-component solve cost without changing the
  // component structure: 8 matches the co-run-scale churn benches; larger
  // values give the multi-component batch bench components heavy enough for
  // fan-out to amortize its dispatch cost.
  explicit ChurnFixture(int flows_per_rack = 8) : network(BuildSpineLeaf(params), 8) {
    network.SetCongestionModel(std::make_unique<FecnCongestionModel>(0.30));
    for (int sl = 0; sl < kNumServiceLevels; ++sl) {
      network.MapSlToQueueEverywhere(sl, sl % 8);
    }
    Rng rng(7);
    auto add = [&](NodeId src, NodeId dst, AppId app) {
      auto flow = std::make_unique<ActiveFlow>();
      flow->id = static_cast<FlowId>(flows.size() + 1);
      flow->app = app;
      flow->sl = static_cast<int>(flow->id % 8);
      flow->remaining_bits = Gigabytes(1);
      flow->path = &network.router().Route(src, dst, static_cast<uint64_t>(flow->id));
      raw.push_back(flow.get());
      flows.push_back(std::move(flow));
    };
    for (int t = 0; t < params.num_tor; ++t) {
      const NodeId base = t * params.hosts_per_tor;
      for (int i = 0; i < flows_per_rack; ++i) {
        if (i < params.hosts_per_tor - 1) {
          add(base + i, base + i + 1, static_cast<AppId>(t % 20));
        } else {
          // Past the chain, fan out from the rack's first host: the shared
          // egress ties the rack into one link-sharing component, growing its
          // solve cost without touching the default (chain-only) shape.
          add(base, base + 1 + (i % (params.hosts_per_tor - 1)), static_cast<AppId>(t % 20));
        }
      }
    }
    const int tors_per_pod = params.num_tor / params.num_pods;
    for (int p = 0; p < params.num_pods; ++p) {
      for (int j = 0; j < 6; ++j) {
        const int t0 = p * tors_per_pod + static_cast<int>(rng.UniformInt(0, tors_per_pod - 1));
        int t1 = p * tors_per_pod + static_cast<int>(rng.UniformInt(0, tors_per_pod - 1));
        while (t1 == t0) {
          t1 = p * tors_per_pod + static_cast<int>(rng.UniformInt(0, tors_per_pod - 1));
        }
        const NodeId src =
            t0 * params.hosts_per_tor + static_cast<NodeId>(rng.UniformInt(0, 7));
        const NodeId dst =
            t1 * params.hosts_per_tor + static_cast<NodeId>(rng.UniformInt(0, 7));
        add(src, dst, static_cast<AppId>(20 + p));
      }
    }
  }

  // The churn flow: cross-ToR inside pod 0, sharing its source host's egress
  // with a background flow so the dirty component is not a trivial island.
  ActiveFlow MakeChurnFlow() {
    ActiveFlow churn;
    churn.id = 1 << 20;
    churn.app = 99;
    churn.sl = 3;
    churn.remaining_bits = Gigabytes(1);
    churn.path = &network.router().Route(2, params.hosts_per_tor + 2, 0);
    return churn;
  }

  SpineLeafParams params{};
  Network network;
  std::vector<std::unique_ptr<ActiveFlow>> flows;
  std::vector<ActiveFlow*> raw;
};

void BM_ChurnIncremental(benchmark::State& state) {
  ChurnFixture fixture;
  WfqMaxMinAllocator allocator;
  std::unique_ptr<AllocationEngine> engine = allocator.CreateEngine(&fixture.network);
  for (ActiveFlow* flow : fixture.raw) {
    engine->FlowAdded(flow);
  }
  engine->Recompute();
  ActiveFlow churn = fixture.MakeChurnFlow();
  for (auto _ : state) {
    engine->FlowAdded(&churn);
    engine->Recompute();
    engine->FlowRemoved(&churn);
    engine->Recompute();
    benchmark::DoNotOptimize(churn.rate);
  }
  state.SetItemsProcessed(state.iterations() * 2);  // Two events per cycle.
  const AllocationEngineStats& stats = engine->stats();
  state.counters["flows_rerated_per_event"] = benchmark::Counter(
      static_cast<double>(stats.flows_rerated) / static_cast<double>(stats.recomputes));
}
BENCHMARK(BM_ChurnIncremental)->Unit(benchmark::kMicrosecond);

// The pre-engine cost model: every event re-solves the whole fabric from
// scratch (what BandwidthAllocator::Allocate did on each reallocation).
void BM_ChurnFullRebuild(benchmark::State& state) {
  ChurnFixture fixture;
  WfqMaxMinAllocator allocator;
  ActiveFlow churn = fixture.MakeChurnFlow();
  std::vector<ActiveFlow*> with_churn = fixture.raw;
  with_churn.push_back(&churn);
  for (auto _ : state) {
    allocator.Allocate(with_churn, fixture.network);   // Arrival.
    allocator.Allocate(fixture.raw, fixture.network);  // Departure.
    benchmark::DoNotOptimize(churn.rate);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ChurnFullRebuild)->Unit(benchmark::kMicrosecond);

// The churn event with a worker pool configured (DESIGN.md §7.3). The
// arrival dirties one component and the departure two tiny ones — both far
// below kMinParallelBatchFlows, so the adaptive serial fallback must keep
// every batch inline and the numbers should match BM_ChurnIncremental
// (before the fallback, pool dispatch made this ~4x slower).
void BM_ChurnIncrementalParallel(benchmark::State& state) {
  ChurnFixture fixture;
  WfqMaxMinAllocator allocator;
  std::unique_ptr<AllocationEngine> engine = allocator.CreateEngine(&fixture.network);
  engine->SetSolveJobs(static_cast<int>(state.range(0)));
  for (ActiveFlow* flow : fixture.raw) {
    engine->FlowAdded(flow);
  }
  engine->Recompute();
  ActiveFlow churn = fixture.MakeChurnFlow();
  for (auto _ : state) {
    engine->FlowAdded(&churn);
    engine->Recompute();
    engine->FlowRemoved(&churn);
    engine->Recompute();
    benchmark::DoNotOptimize(churn.rate);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  const AllocationEngineStats& stats = engine->stats();
  state.counters["flows_rerated_per_event"] = benchmark::Counter(
      static_cast<double>(stats.flows_rerated) / static_cast<double>(stats.recomputes));
}
BENCHMARK(BM_ChurnIncrementalParallel)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

// Multi-component batches: InvalidateAll makes every component dirty, so the
// following Recompute solves the whole fixture as one batch — serially at
// Arg 1, fanned across the pool at Args 2 and 4. The dense fixture (48
// flows/rack) makes each rack one heavy component, the shape where fan-out
// amortizes its dispatch cost; rates stay bit-identical at every Arg.
void BM_ComponentBatchSolve(benchmark::State& state) {
  ChurnFixture fixture(/*flows_per_rack=*/48);
  WfqMaxMinAllocator allocator;
  std::unique_ptr<AllocationEngine> engine = allocator.CreateEngine(&fixture.network);
  engine->SetSolveJobs(static_cast<int>(state.range(0)));
  for (ActiveFlow* flow : fixture.raw) {
    engine->FlowAdded(flow);
  }
  engine->Recompute();
  for (auto _ : state) {
    engine->InvalidateAll();
    engine->Recompute();
    benchmark::DoNotOptimize(fixture.raw[0]->rate);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["components_per_solve"] =
      benchmark::Counter(static_cast<double>(engine->stats().components_solved) /
                         static_cast<double>(engine->stats().recomputes));
}
BENCHMARK(BM_ComponentBatchSolve)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

// --- Eq 2 weight solver vs application count ---------------------------------

void BM_WeightSolverConvex(benchmark::State& state) {
  Rng rng(11);
  std::vector<SensitivityModel> models;
  for (int64_t i = 0; i < state.range(0); ++i) {
    models.push_back(RandomConvexModel(&rng));
  }
  WeightSolver solver;
  Rng solve_rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(models, &solve_rng).objective);
  }
}
BENCHMARK(BM_WeightSolverConvex)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_WeightSolverProjectedGradient(benchmark::State& state) {
  // Degree-4 models leave the closed-form cubic path. These draws happen to
  // stay convex, so the solver lands in the generic convex bisection
  // (MinimizeConvexSeparable), not the projected gradient — the name is kept
  // for continuity of the perf trajectory; BM_WeightSolverNonConvex below
  // actually exercises the projected-gradient restarts.
  Rng rng(17);
  std::vector<SensitivityModel> models;
  for (int64_t i = 0; i < state.range(0); ++i) {
    const SensitivityModel base = RandomConvexModel(&rng);
    std::vector<double> coeffs = base.polynomial().coefficients();
    coeffs.resize(5, 0.0);
    coeffs[4] = 0.01;
    models.push_back(SensitivityModel{Polynomial(coeffs)});
  }
  WeightSolver solver;
  Rng solve_rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(models, &solve_rng).objective);
  }
}
BENCHMARK(BM_WeightSolverProjectedGradient)->Arg(2)->Arg(8)->Arg(32);

void BM_WeightSolverNonConvex(benchmark::State& state) {
  // One non-convex quartic in the mix (negative curvature near w = 1) forces
  // the projected-gradient path with its random restarts.
  Rng rng(17);
  std::vector<SensitivityModel> models;
  models.push_back(SensitivityModel{Polynomial({2.0, -1.2, 0.3, -0.25, 0.05})});
  for (int64_t i = 1; i < state.range(0); ++i) {
    models.push_back(RandomConvexModel(&rng));
  }
  WeightSolver solver;
  Rng solve_rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(models, &solve_rng).objective);
  }
}
BENCHMARK(BM_WeightSolverNonConvex)->Arg(2)->Arg(8)->Arg(32);

// --- Clustering ---------------------------------------------------------------

void BM_PlMapping(benchmark::State& state) {
  Rng rng(23);
  std::vector<SensitivityModel> models;
  for (int64_t i = 0; i < state.range(0); ++i) {
    models.push_back(RandomConvexModel(&rng));
  }
  for (auto _ : state) {
    Rng cluster_rng(29);
    benchmark::DoNotOptimize(MapAppsToPls(models, 8, &cluster_rng).pl_models.size());
  }
}
BENCHMARK(BM_PlMapping)->Arg(16)->Arg(100)->Arg(1000);

void BM_QueueMapperPort(benchmark::State& state) {
  Rng rng(31);
  std::vector<SensitivityModel> pls;
  for (int i = 0; i < 16; ++i) {
    pls.push_back(RandomConvexModel(&rng));
  }
  QueueMapper mapper(pls);
  const std::vector<int> present = {0, 2, 3, 5, 7, 8, 11, 13, 14, 15};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.MapPort(present, static_cast<int>(state.range(0))).level);
  }
}
BENCHMARK(BM_QueueMapperPort)->Arg(2)->Arg(4)->Arg(8);

// --- Controller flush (signature-keyed solve cache, DESIGN.md §7.2) ----------

class FlushBenchController : public CentralizedController {
 public:
  using CentralizedController::CentralizedController;
  using CentralizedController::InstallPlModels;
  using CentralizedController::RegisterAppStatic;
};

// A fig12-style scenario on a small spine-leaf fabric: 48 apps with distinct
// convex models, 32 instances each, fanout-4 ring connections. The scheduler
// never runs, so all controller work lands in the timed recompute.
struct ControllerFlushFixture {
  explicit ControllerFlushFixture(bool solve_cache)
      : network(BuildSpineLeaf({.num_spine = 2,
                                .num_leaf = 4,
                                .num_tor = 4,
                                .hosts_per_tor = 3,
                                .num_pods = 2,
                                .host_link_bps = Gbps64(10),
                                .tor_leaf_bps = Gbps64(10),
                                .leaf_spine_bps = Gbps64(10)}),
                /*default_queues=*/8),
        flow_sim(&scheduler, &network, &allocator) {
    Rng rng(7);
    constexpr int kApps = 48;
    std::vector<SensitivityModel> models;
    for (int a = 0; a < kApps; ++a) {
      models.push_back(RandomConvexModel(&rng));
      SensitivityEntry entry;
      entry.model = models.back();
      table.Put("app" + std::to_string(a), entry);
    }
    ControllerOptions options;
    options.solve_cache = solve_cache;
    controller.emplace(&network, &flow_sim, &table, options);
    Rng cluster_rng(11);
    const PlMapping mapping = MapAppsToPls(models, options.num_pls, &cluster_rng);
    controller->InstallPlModels(mapping.pl_models);
    const std::vector<NodeId> hosts = network.topology().Hosts();
    for (int a = 0; a < kApps; ++a) {
      controller->RegisterAppStatic(a, "app" + std::to_string(a), mapping.app_to_pl[a]);
      std::vector<NodeId> placement;
      for (int i = 0; i < 32; ++i) {
        placement.push_back(rng.Choice(hosts));
      }
      for (int i = 0; i < 32; ++i) {
        for (int k = 1; k <= 4; ++k) {
          const NodeId src = placement[static_cast<size_t>(i)];
          const NodeId dst = placement[static_cast<size_t>((i + k) % 32)];
          if (src != dst) {
            controller->ConnCreate(a, src, dst, static_cast<uint64_t>(a * 1000 + i * 8 + k));
          }
        }
      }
    }
  }

  EventScheduler scheduler;
  Network network;
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim;
  SensitivityTable table;
  std::optional<FlushBenchController> controller;
};

void ControllerFlushBench(benchmark::State& state, bool solve_cache) {
  ControllerFlushFixture fixture(solve_cache);
  const uint64_t before = fixture.controller->stats().port_reconfigurations;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.controller->RecomputeAllPortsTimed());
  }
  // Items = port reconfigurations, so items/s compares cache-on vs cache-off
  // flush throughput directly.
  state.SetItemsProcessed(
      static_cast<int64_t>(fixture.controller->stats().port_reconfigurations - before));
}

void BM_ControllerFlushCold(benchmark::State& state) { ControllerFlushBench(state, false); }
BENCHMARK(BM_ControllerFlushCold)->Unit(benchmark::kMicrosecond);

void BM_ControllerFlushCached(benchmark::State& state) { ControllerFlushBench(state, true); }
BENCHMARK(BM_ControllerFlushCached)->Unit(benchmark::kMicrosecond);

// --- Distributed sharded flush (DESIGN.md §7.3) ------------------------------

// The same fig12-style scenario on a mid-size fabric (96 hosts, 384 ports) so
// eight shards still carry dozens of ports each; num_shards == shard_jobs ==
// the bench argument. Programmed state and merged counters are bit-identical
// at every argument (tests/sharded_flush_test.cc); this curve tracks how
// flush latency scales with the shard count, so the /1 row is the serial
// baseline and /8 over /1 is the control-plane speedup on a multicore host.
struct DistributedFlushFixture {
  explicit DistributedFlushFixture(int shards)
      : network(BuildSpineLeaf({.num_spine = 4,
                                .num_leaf = 8,
                                .num_tor = 16,
                                .hosts_per_tor = 6,
                                .num_pods = 2,
                                .host_link_bps = Gbps64(10),
                                .tor_leaf_bps = Gbps64(10),
                                .leaf_spine_bps = Gbps64(10)}),
                /*default_queues=*/8),
        flow_sim(&scheduler, &network, &allocator) {
    Rng rng(7);
    constexpr int kApps = 48;
    for (int a = 0; a < kApps; ++a) {
      SensitivityEntry entry;
      entry.model = RandomConvexModel(&rng);
      table.Put("app" + std::to_string(a), entry);
    }
    ControllerOptions base;
    DistributedControllerOptions options;
    options.base = base;
    options.num_shards = shards;
    options.shard_jobs = shards;
    controller.emplace(&network, &flow_sim, &table, MappingDatabase::Build(table, base.num_pls, 11),
                       options);
    const std::vector<NodeId> hosts = network.topology().Hosts();
    for (int a = 0; a < kApps; ++a) {
      controller->AppRegister(a, "app" + std::to_string(a));
      std::vector<NodeId> placement;
      for (int i = 0; i < 32; ++i) {
        placement.push_back(rng.Choice(hosts));
      }
      for (int i = 0; i < 32; ++i) {
        for (int k = 1; k <= 4; ++k) {
          const NodeId src = placement[static_cast<size_t>(i)];
          const NodeId dst = placement[static_cast<size_t>((i + k) % 32)];
          if (src != dst) {
            controller->ConnCreate(a, src, dst, static_cast<uint64_t>(a * 1000 + i * 8 + k));
          }
        }
      }
    }
  }

  EventScheduler scheduler;
  Network network;
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim;
  SensitivityTable table;
  std::optional<DistributedController> controller;
};

void BM_DistributedFlush(benchmark::State& state) {
  DistributedFlushFixture fixture(static_cast<int>(state.range(0)));
  const uint64_t before = fixture.controller->stats().port_reconfigurations;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.controller->RecomputeAllPortsTimed());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(fixture.controller->stats().port_reconfigurations - before));
}
// Real time, not CPU time: google-benchmark's CPU clock only meters the
// calling thread, which would credit the pooled flush for work it moved to
// workers. Wall time is what a controller flush latency curve means.
BENCHMARK(BM_DistributedFlush)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- Sweep engine --------------------------------------------------------------

// Per-task overhead of the deterministic sweep pool: trivial tasks, so the
// measured cost is claim + seed-split + collection, not work.
void BM_SweepRunnerOverhead(benchmark::State& state) {
  SweepRunner runner(static_cast<int>(state.range(0)));
  constexpr size_t kTasks = 1024;
  for (auto _ : state) {
    const std::vector<uint64_t> out = runner.Map<uint64_t>(
        kTasks, [](size_t i) { return Rng::StreamSeed(42, i); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_SweepRunnerOverhead)->Arg(1)->Arg(2)->Arg(4);

// Scaling on compute-bound tasks shaped like the figure sweeps (independent
// seeded simulation cells): wall time should drop ~linearly in the argument
// up to the hardware thread count.
void BM_SweepRunnerScaling(benchmark::State& state) {
  SweepRunner runner(static_cast<int>(state.range(0)));
  constexpr size_t kTasks = 64;
  for (auto _ : state) {
    const std::vector<double> out = runner.MapSeeded<double>(
        kTasks, 42, [](size_t, Rng* rng) {
          double acc = 0;
          for (int i = 0; i < 50000; ++i) {
            acc += rng->Uniform01();
          }
          return acc;
        });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_SweepRunnerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Routing -------------------------------------------------------------------

void BM_RouterColdPath(benchmark::State& state) {
  const Topology topo = BuildSpineLeaf(SpineLeafParams{});
  Router router(&topo);
  Rng rng(37);
  const std::vector<NodeId> hosts = topo.Hosts();
  uint64_t salt = 0;
  for (auto _ : state) {
    // Fresh salt each time: exercises path computation, not the cache. Draw
    // src and dst independently from the full host set, deterministically
    // rejecting src == dst (the empty path would measure nothing).
    const NodeId src = rng.Choice(hosts);
    NodeId dst = rng.Choice(hosts);
    while (dst == src) {
      dst = rng.Choice(hosts);
    }
    benchmark::DoNotOptimize(router.Route(src, dst, ++salt));
  }
}
BENCHMARK(BM_RouterColdPath);

void BM_RouterCachedPath(benchmark::State& state) {
  const Topology topo = BuildSpineLeaf(SpineLeafParams{});
  Router router(&topo);
  router.Route(0, 1900, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Route(0, 1900, 5).size());
  }
}
BENCHMARK(BM_RouterCachedPath);

// --- Machine-readable output ---------------------------------------------------

// Console reporter that also records every finished run so main() can dump a
// compact JSON summary (name, per-iteration time, items/sec) for the perf
// trajectory across PRs.
class RecordingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (!run.error_occurred) {
        recorded_.push_back(run);
      }
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Run>& recorded() const { return recorded_; }

 private:
  std::vector<Run> recorded_;
};

void WriteJsonSummary(const std::vector<benchmark::BenchmarkReporter::Run>& runs,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": 1,\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const double real_ns =
        run.iterations > 0 ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9
                           : 0.0;
    out << "    {\"name\": \"" << run.benchmark_name() << "\", \"iterations\": " << run.iterations
        << ", \"real_time_ns\": " << real_ns;
    const auto items = run.counters.find("items_per_second");
    if (items != run.counters.end()) {
      out << ", \"items_per_second\": " << items->second.value;
    }
    out << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace saba

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  saba::RecordingConsoleReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  saba::WriteJsonSummary(reporter.recorded(),
                         saba::EnvString("SABA_BENCH_JSON", "BENCH_micro.json"));
  benchmark::Shutdown();
  return 0;
}
