// Figure 2: CPU and network utilization timelines of LR and PR at 75% and
// 25% of link bandwidth, run in isolation on 8 servers.
//
// The paper's reading: LR alternates clean compute/communication phases and
// its completion stretches 2.59x from 75% to 25% (172 s -> 447 s); PR keeps
// the network busy continuously (overlapped + prefetch traffic) yet only
// stretches 1.37x (310 s -> 427 s).

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/net/allocator.h"
#include "src/net/flow_simulator.h"
#include "src/net/units.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/app_runtime.h"

namespace saba {
namespace {

struct Timeline {
  std::vector<double> cpu;  // [0,1] per sample.
  std::vector<double> net;  // [0,1] of the *available* (throttled) bandwidth.
  double completion = 0;
  double sample_period = 0;
};

Timeline RunWithSampling(const WorkloadSpec& spec, double fraction) {
  EventScheduler scheduler;
  Network network(BuildSingleSwitchStar(8, RoundBps(Gbps(56) * fraction)));
  WfqMaxMinAllocator allocator;
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  NullNetworkPolicy policy;
  Application app(&scheduler, &flow_sim, spec, network.topology().Hosts(), 0, &policy);

  Timeline timeline;
  timeline.sample_period = 2.0;
  // Periodic sampler: records host 0's view (all instances are symmetric).
  std::function<void()> sample = [&] {
    if (app.finished()) {
      return;
    }
    timeline.cpu.push_back(app.IsComputing() ? 0.95 : 0.08);
    timeline.net.push_back(flow_sim.HostEgressRate(0) / (Gbps(56) * fraction));
    scheduler.ScheduleAfter(timeline.sample_period, sample);
  };
  scheduler.ScheduleAfter(0.0, sample);
  app.Start([&](AppId, SimTime seconds) { timeline.completion = seconds; });
  scheduler.Run();
  return timeline;
}

// Renders a utilization series as a row of 0-9 deciles, bucketed to at most
// `width` columns.
std::string Sparkline(const std::vector<double>& series, size_t width) {
  std::string out;
  if (series.empty()) {
    return out;
  }
  const size_t bucket = std::max<size_t>(1, series.size() / width);
  for (size_t start = 0; start < series.size(); start += bucket) {
    double sum = 0;
    size_t n = 0;
    for (size_t i = start; i < std::min(series.size(), start + bucket); ++i) {
      sum += series[i];
      ++n;
    }
    const int decile = std::min(9, static_cast<int>(sum / static_cast<double>(n) * 10));
    out.push_back(static_cast<char>('0' + decile));
  }
  return out;
}

void Run() {
  PrintBanner(std::cout, "Figure 2",
              "Resource-utilization timelines (0-9 = utilization decile per time bucket) for "
              "LR and PR at 75% and 25% bandwidth, isolation, 8 servers.",
              EnvSeed());

  // The four (workload, bandwidth) timelines are independent simulations.
  struct Cell {
    const char* name;
    double fraction;
    const char* paper;
  };
  const std::vector<Cell> cells = {
      {"LR", 0.75, "172"}, {"LR", 0.25, "447"}, {"PR", 0.75, "310"}, {"PR", 0.25, "427"}};
  const std::vector<Timeline> timelines =
      RunSweep<Timeline>("fig2 timelines", cells.size(), [&](size_t c) {
        return RunWithSampling(*FindWorkload(cells[c].name), cells[c].fraction);
      });

  TablePrinter completions({"Workload", "BW", "Completion s", "Paper s"});
  for (size_t c = 0; c < cells.size(); ++c) {
    const Timeline& t = timelines[c];
    std::cout << cells[c].name << " @" << static_cast<int>(cells[c].fraction * 100)
              << "% BW  (completion " << Fmt(t.completion, 0) << " s)\n";
    std::cout << "  CPU " << Sparkline(t.cpu, 72) << '\n';
    std::cout << "  NET " << Sparkline(t.net, 72) << "\n\n";
    completions.AddRow({cells[c].name, cells[c].fraction == 0.75 ? "75%" : "25%",
                        Fmt(t.completion, 0), cells[c].paper});
  }
  completions.Print(std::cout);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
