// Figure 1: the motivation experiments.
//
// (a) Slowdown of each workload when NIC bandwidth is throttled to 75% and
//     25% of the 56 Gb/s link, measured in isolation on 8 servers.
//     Paper: slowdowns at 25% range from 1.1x (Sort) to 3.4x (LR), avg 2.1x.
// (b) LR and PR co-running on the same 8 servers under (i) per-flow max-min
//     (InfiniBand baseline) and (ii) the skewed, sensitivity-derived split.
//     Paper: max-min LR 2.26x / PR 1.21x; skewed LR 1.48x / PR 1.34x.

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/corun.h"
#include "src/exp/report.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"

namespace saba {
namespace {

void Fig1a() {
  std::cout << "--- Fig 1a: slowdown under throttled bandwidth (isolation, 8 servers) ---\n";
  TablePrinter table({"Workload", "Slowdown @75%", "Slowdown @25%", "Paper @25%"});
  const char* paper25[] = {"3.4", "~3.4", "~2.8", "~2.6", "~2.2", "~2.0",
                           "1.4", "~1.2", "~1.5", "1.1"};
  const auto& catalog = HiBenchCatalog();
  // One task per workload: three isolated runs (full / 75% / 25% bandwidth).
  struct Slowdowns {
    double d75 = 0;
    double d25 = 0;
  };
  const std::vector<Slowdowns> rows =
      RunSweep<Slowdowns>("fig1a workloads", catalog.size(), [&](size_t w) {
        const WorkloadSpec& spec = catalog[w];
        const double base = OfflineProfiler::RunIsolated(spec, 1.0, 8, Gbps(56));
        return Slowdowns{OfflineProfiler::RunIsolated(spec, 0.75, 8, Gbps(56)) / base,
                         OfflineProfiler::RunIsolated(spec, 0.25, 8, Gbps(56)) / base};
      });
  double total = 0;
  for (size_t w = 0; w < catalog.size(); ++w) {
    total += rows[w].d25;
    table.AddRow({catalog[w].name, Fmt(rows[w].d75), Fmt(rows[w].d25), paper25[w]});
  }
  table.Print(std::cout);
  std::cout << "average slowdown @25%: " << Fmt(total / 10) << "  (paper: 2.1)\n\n";
}

void Fig1b(const SensitivityTable& table) {
  std::cout << "--- Fig 1b: LR + PR co-run, max-min vs skewed (Saba) allocation ---\n";
  std::vector<NodeId> hosts;
  for (NodeId h = 0; h < 8; ++h) {
    hosts.push_back(h);
  }
  const std::vector<JobSpec> jobs = {{*FindWorkload("LR"), hosts, 0.0},
                                     {*FindWorkload("PR"), hosts, 0.0}};
  const Topology topo = BuildSingleSwitchStar(8, Gbps64(56));

  // Four independent simulations: the two isolated references and the two
  // co-runs. Results are keyed by task index.
  struct Fig1bCell {
    double isolated = 0;
    CoRunResult corun;
  };
  const std::vector<Fig1bCell> cells = RunSweep<Fig1bCell>("fig1b cells", 4, [&](size_t t) {
    Fig1bCell cell;
    switch (t) {
      case 0:
        cell.isolated = OfflineProfiler::RunIsolated(*FindWorkload("LR"), 1.0, 8, Gbps(56));
        break;
      case 1:
        cell.isolated = OfflineProfiler::RunIsolated(*FindWorkload("PR"), 1.0, 8, Gbps(56));
        break;
      case 2: {
        CoRunOptions baseline_options;
        baseline_options.policy = PolicyKind::kBaseline;
        cell.corun = RunCoRun(topo, jobs, baseline_options);
        break;
      }
      default: {
        CoRunOptions saba_options;
        saba_options.policy = PolicyKind::kSaba;
        saba_options.table = &table;
        cell.corun = RunCoRun(topo, jobs, saba_options);
        break;
      }
    }
    return cell;
  });
  const double lr_alone = cells[0].isolated;
  const double pr_alone = cells[1].isolated;
  const CoRunResult& maxmin = cells[2].corun;
  const CoRunResult& skewed = cells[3].corun;

  TablePrinter out({"Workload", "Max-min slowdown", "Skewed slowdown", "Paper max-min",
                    "Paper skewed"});
  out.AddRow({"LR", Fmt(maxmin.completion_seconds[0] / lr_alone),
              Fmt(skewed.completion_seconds[0] / lr_alone), "2.26", "1.48"});
  out.AddRow({"PR", Fmt(maxmin.completion_seconds[1] / pr_alone),
              Fmt(skewed.completion_seconds[1] / pr_alone), "1.21", "1.34"});
  out.Print(std::cout);
}

void Run() {
  PrintBanner(std::cout, "Figure 1",
              "Motivation: bandwidth sensitivity varies across workloads (a), and skewing "
              "bandwidth toward the sensitive workload beats max-min fairness (b).",
              EnvSeed());
  Fig1a();
  const SensitivityTable table = ProfileCatalog(EnvSeed());
  Fig1b(table);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
