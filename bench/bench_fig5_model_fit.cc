// Figure 5: sensitivity models of SQL and LR with polynomial degrees 1-3.
//
// Paper: SQL's hockey-stick (flat until ~25%, then steep) needs k=3 for a
// good fit, while LR's smooth convex curve is captured well by k=2.

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/numerics/regression.h"

namespace saba {
namespace {

void Run() {
  PrintBanner(std::cout, "Figure 5",
              "Profiling samples and fitted sensitivity models (k = 1..3) for SQL and LR.",
              EnvSeed());

  // The two workload profiles are independent simulations.
  const std::vector<const char*> names = {"SQL", "LR"};
  const std::vector<ProfileResult> profiles =
      RunSweep<ProfileResult>("fig5 profiles", names.size(), [&](size_t w) {
        // Shared samples across degrees: profile once at k=3 and refit.
        ProfilerOptions options;
        options.seed = EnvSeed();
        return OfflineProfiler(options).Profile(*FindWorkload(names[w]));
      });

  for (size_t w = 0; w < names.size(); ++w) {
    const char* name = names[w];
    const ProfileResult& profile = profiles[w];

    std::cout << "--- " << name << " ---\n";
    TablePrinter table({"BW%", "Sample", "k=1", "k=2", "k=3"});
    std::vector<Polynomial> fits;
    for (size_t k = 1; k <= 3; ++k) {
      fits.push_back(FitPolynomial(profile.samples, k));
    }
    for (const Sample& s : profile.samples) {
      table.AddRow({Fmt(s.b * 100, 0), Fmt(s.d), Fmt(fits[0].Evaluate(s.b)),
                    Fmt(fits[1].Evaluate(s.b)), Fmt(fits[2].Evaluate(s.b))});
    }
    table.Print(std::cout);
    std::cout << "R^2:  k=1 " << Fmt(RSquaredClamped(fits[0], profile.samples), 3) << "  k=2 "
              << Fmt(RSquaredClamped(fits[1], profile.samples), 3) << "  k=3 "
              << Fmt(RSquaredClamped(fits[2], profile.samples), 3) << "\n";
    std::cout << "model (k=3): D(b) = " << fits[2].ToString() << "\n\n";
  }
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
