// Table 1: the workload suite and its profiling datasets, plus the modeled
// equivalents this reproduction runs (stage structure and calibrated
// compute/communication balance).

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/net/units.h"

namespace saba {
namespace {

void Run() {
  PrintBanner(std::cout, "Table 1",
              "Dataset size of workloads in profiling (paper column) and the calibrated "
              "stage model standing in for each workload (reproduction columns).",
              EnvSeed());

  TablePrinter table({"Workload", "Category", "Paper dataset", "Stages", "Compute s/stage",
                      "Shuffle s/stage", "Overlap", "Fanout", "Base s"});
  for (const WorkloadDatasetInfo& info : Table1Datasets()) {
    const WorkloadSpec* spec = FindWorkload(info.name);
    const StageSpec& stage = spec->stages[0];
    const double comm_seconds =
        stage.bits_per_peer * static_cast<double>(spec->fanout) / Gbps(56);
    const double base = OfflineProfiler::RunIsolated(*spec, 1.0, 8, Gbps(56));
    table.AddRow({info.name, info.category, info.dataset, std::to_string(spec->stages.size()),
                  Fmt(stage.compute_seconds, 1), Fmt(comm_seconds, 1), Fmt(stage.overlap, 2),
                  std::to_string(spec->fanout), Fmt(base, 0)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
