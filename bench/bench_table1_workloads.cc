// Table 1: the workload suite and its profiling datasets, plus the modeled
// equivalents this reproduction runs (stage structure and calibrated
// compute/communication balance).

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/net/units.h"

namespace saba {
namespace {

void Run() {
  PrintBanner(std::cout, "Table 1",
              "Dataset size of workloads in profiling (paper column) and the calibrated "
              "stage model standing in for each workload (reproduction columns).",
              EnvSeed());

  TablePrinter table({"Workload", "Category", "Paper dataset", "Stages", "Compute s/stage",
                      "Shuffle s/stage", "Overlap", "Fanout", "Base s"});
  const auto& datasets = Table1Datasets();
  // One task per workload: the base-completion simulation dominates.
  const std::vector<double> bases =
      RunSweep<double>("table1 workloads", datasets.size(), [&](size_t w) {
        return OfflineProfiler::RunIsolated(*FindWorkload(datasets[w].name), 1.0, 8, Gbps(56));
      });
  for (size_t w = 0; w < datasets.size(); ++w) {
    const WorkloadDatasetInfo& info = datasets[w];
    const WorkloadSpec* spec = FindWorkload(info.name);
    const StageSpec& stage = spec->stages[0];
    const double comm_seconds =
        stage.bits_per_peer * static_cast<double>(spec->fanout) / Gbps(56);
    table.AddRow({info.name, info.category, info.dataset, std::to_string(spec->stages.size()),
                  Fmt(stage.compute_seconds, 1), Fmt(comm_seconds, 1), Fmt(stage.overlap, 2),
                  std::to_string(spec->fanout), Fmt(bases[w], 0)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
