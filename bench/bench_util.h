// Shared helpers for the figure-reproduction benches.
//
// Every bench prints its table(s) to stdout with a banner naming the figure,
// the knobs, and the seed. Scale knobs (setup counts, scenario counts) come
// from environment variables so CI can run quick passes while a full
// reproduction uses the paper's counts; parsing is strict (src/exp/knobs.h)
// so a typo'd knob aborts instead of silently running an empty sweep.
//
// Independent simulation cells run through the SweepRunner (SABA_JOBS worker
// threads, deterministic task order — see DESIGN.md "Determinism & threading
// model"). Sweep throughput counters go to stderr: stdout is the report and
// must stay byte-identical across thread counts.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/profiler.h"
#include "src/exp/knobs.h"
#include "src/exp/sweep_runner.h"
#include "src/workload/workload_catalog.h"

namespace saba {

// Profiles the HiBench catalog with the paper's standard settings (8 nodes,
// 56 Gb/s, degree-3 fits, light measurement noise).
inline SensitivityTable ProfileCatalog(uint64_t seed, size_t degree = 3) {
  ProfilerOptions options;
  options.polynomial_degree = degree;
  options.seed = seed;
  return OfflineProfiler(options).ProfileAll(HiBenchCatalog());
}

// Fans `num_tasks` independent tasks across the SABA_JOBS sweep pool and
// returns their results in task order; the sweep's tasks/s and speedup
// counters are printed to stderr under `label`.
template <typename T>
std::vector<T> RunSweep(const std::string& label, size_t num_tasks,
                        const std::function<T(size_t)>& task) {
  SweepRunner runner;
  std::vector<T> results = runner.Map<T>(num_tasks, task);
  std::cerr << "[sweep " << label << "] " << runner.stats().Summary() << '\n';
  return results;
}

// Seeded variant: each task gets the private stream Rng::ForStream(seed, i).
template <typename T>
std::vector<T> RunSeededSweep(const std::string& label, size_t num_tasks, uint64_t root_seed,
                              const std::function<T(size_t, Rng*)>& task) {
  SweepRunner runner;
  std::vector<T> results = runner.MapSeeded<T>(num_tasks, root_seed, task);
  std::cerr << "[sweep " << label << "] " << runner.stats().Summary() << '\n';
  return results;
}

}  // namespace saba

#endif  // BENCH_BENCH_UTIL_H_
