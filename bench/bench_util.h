// Shared helpers for the figure-reproduction benches.
//
// Every bench prints its table(s) to stdout with a banner naming the figure,
// the knobs, and the seed. Scale knobs (setup counts, scenario counts) come
// from environment variables so CI can run quick passes while a full
// reproduction uses the paper's counts.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "src/core/profiler.h"
#include "src/workload/workload_catalog.h"

namespace saba {

// Integer knob from the environment with a default.
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline uint64_t EnvSeed(uint64_t fallback = 42) {
  const char* value = std::getenv("SABA_SEED");
  return value != nullptr ? static_cast<uint64_t>(std::atoll(value)) : fallback;
}

// Profiles the HiBench catalog with the paper's standard settings (8 nodes,
// 56 Gb/s, degree-3 fits, light measurement noise).
inline SensitivityTable ProfileCatalog(uint64_t seed, size_t degree = 3) {
  ProfilerOptions options;
  options.polynomial_degree = degree;
  options.seed = seed;
  return OfflineProfiler(options).ProfileAll(HiBenchCatalog());
}

}  // namespace saba

#endif  // BENCH_BENCH_UTIL_H_
