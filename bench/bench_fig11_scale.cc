// Fig 11-style controller scale-out: flush latency of the sharded
// distributed control plane (DESIGN.md §7.3) on a 5x spine-leaf fabric —
// 9,720 servers at the default SABA_FIG11_SCALE=5 — under flow-arrival-driven
// steady-state churn.
//
// Jobs of 32 instances with fanout-4 ring connections arrive until the
// target concurrent-flow count is reached; steady state then replaces one
// job per event (departure + arrival in the same simulated instant, so each
// event costs exactly one coalesced flush). The churn-flush wall-time
// distribution per shard count is the figure: each shard worker owns a
// disjoint port set with its own Eq-2 solve cache, so the curve shows how
// the control plane's reconfiguration latency scales out.
//
// SABA_SHARDS picks one shard count; unset or 0 sweeps {1, 2, 4, 8}.
// Timings go to stderr. stdout carries only the banner and the programmed
// state's digest + invariant counters, which are bit-identical at every
// shard count (tests/sharded_flush_test.cc proves the contract; CI diffs
// this binary's stdout at SABA_SHARDS=1 vs 8). Run on an idle multicore
// host when the latency curve matters; on a single core the sweep still
// verifies the invariants but every shard count costs the same wall time.
//
// Scale knobs: SABA_FIG11_SCALE (fabric multiplier; 5 is the ~10k-server
// paper scale), SABA_FIG11_SCALE_FLOWS (target concurrent flows; ~1M
// reproduces the paper-scale churn, the default is a laptop-friendly 200k),
// SABA_FIG11_SCALE_EVENTS (steady-state events per shard count). The
// EXPERIMENTS.md recipe table lists the reproduction settings.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/distributed_controller.h"
#include "src/core/solve_cache.h"
#include "src/exp/report.h"
#include "src/net/units.h"
#include "src/numerics/stats.h"
#include "src/sim/event_scheduler.h"

namespace saba {
namespace {

// Exposes a deterministic fingerprint of everything the controller
// programmed (the bench_fig12_overhead idiom): per-port SL tables, queue
// weights, and solved per-app weights, in ascending link order. A pure
// function of the churn schedule — num_shards and shard_jobs must not move
// it.
class ScaleBenchController : public DistributedController {
 public:
  using DistributedController::DistributedController;

  uint64_t StateDigest(const Network& network) const {
    uint64_t h = kFnvOffsetBasis;
    const size_t num_links = network.topology().num_links();
    for (LinkId link = 0; link < static_cast<LinkId>(num_links); ++link) {
      const PortConfig& port = network.port(link);
      h = HashBytes(h, port.sl_to_queue.data(), port.sl_to_queue.size() * sizeof(int));
      h = HashBytes(h, port.queue_weights.data(), port.queue_weights.size() * sizeof(double));
      auto it = port_weights_.find(link);
      if (it == port_weights_.end()) {
        continue;
      }
      for (const auto& [app, weight] : it->second) {
        // Field by field: pair<AppId, double> has padding bytes.
        h = HashBytes(h, &app, sizeof(app));
        h = HashBytes(h, &weight, sizeof(weight));
      }
    }
    return h;
  }
};

// Random convex decreasing degree-3 polynomial in (1-b), as in fig12.
SensitivityModel RandomModel(Rng* rng) {
  const double s = rng->Uniform(0.1, 4.0);
  const double q = rng->Uniform(0.0, 3.0);
  const double c = rng->Uniform(0.0, 2.0);
  return SensitivityModel{Polynomial({1 + s + q + c, -(s + 2 * q + 3 * c), q + 3 * c, -c})};
}

struct ConnSpec {
  NodeId src;
  NodeId dst;
  uint64_t salt;
};

struct JobSpec {
  AppId app = 0;
  std::string workload;
  std::vector<ConnSpec> conns;
};

constexpr int kInstancesPerJob = 32;
constexpr int kFanout = 4;

JobSpec MakeJob(AppId app, int num_workloads, const std::vector<NodeId>& hosts, Rng* rng) {
  JobSpec job;
  job.app = app;
  job.workload = "w" + std::to_string(rng->UniformInt(0, num_workloads - 1));
  std::vector<NodeId> placement;
  placement.reserve(kInstancesPerJob);
  for (int i = 0; i < kInstancesPerJob; ++i) {
    placement.push_back(rng->Choice(hosts));
  }
  for (int i = 0; i < kInstancesPerJob; ++i) {
    for (int k = 1; k <= kFanout; ++k) {
      const NodeId src = placement[static_cast<size_t>(i)];
      const NodeId dst = placement[static_cast<size_t>((i + k) % kInstancesPerJob)];
      if (src != dst) {
        job.conns.push_back({src, dst, rng->Next()});
      }
    }
  }
  return job;
}

// The full churn script, generated once and replayed verbatim for every
// shard count so all universes consume byte-identical delta streams.
struct Schedule {
  std::vector<JobSpec> ramp;
  struct Event {
    JobSpec departs;  // Copy of the replaced job (its conns must be torn down).
    JobSpec arrives;
  };
  std::vector<Event> events;
  size_t concurrent_flows = 0;  // Live connection count at steady state.
};

Schedule BuildSchedule(const std::vector<NodeId>& hosts, int num_workloads, size_t target_flows,
                       int num_events, uint64_t seed) {
  Schedule schedule;
  Rng rng(seed);
  AppId next_app = 1;
  while (schedule.concurrent_flows < target_flows) {
    schedule.ramp.push_back(MakeJob(next_app++, num_workloads, hosts, &rng));
    schedule.concurrent_flows += schedule.ramp.back().conns.size();
  }
  // Steady state: each event swaps one live job for a fresh one, keeping the
  // concurrent-flow count (nearly) constant.
  std::vector<JobSpec> live = schedule.ramp;
  for (int e = 0; e < num_events; ++e) {
    const size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
    Schedule::Event event;
    event.departs = live[pick];
    event.arrives = MakeJob(next_app++, num_workloads, hosts, &rng);
    live[pick] = event.arrives;
    schedule.events.push_back(std::move(event));
  }
  return schedule;
}

struct UniverseResult {
  uint64_t digest = 0;
  uint64_t port_reconfigurations = 0;
  uint64_t flushes = 0;
  uint64_t ports_flushed = 0;
  uint64_t conn_creates = 0;
  std::vector<double> churn_flush_seconds;
};

UniverseResult RunUniverse(const Topology& topo, const SensitivityTable& table,
                           const MappingDatabase& database, const Schedule& schedule, int shards,
                           uint64_t controller_seed) {
  EventScheduler scheduler;
  Network network(topo, /*default_queues=*/16);
  WfqMaxMinAllocator allocator;
  // A live flow simulator coalesces each instant's deltas into one flush;
  // the scheduler only ever runs the flush callbacks (no flows exist).
  FlowSimulator flow_sim(&scheduler, &network, &allocator);
  DistributedControllerOptions options;
  options.base.seed = controller_seed;
  options.num_shards = shards;
  options.shard_jobs = shards;
  ScaleBenchController controller(&network, &flow_sim, &table, database, options);

  const auto settle = [&] { scheduler.RunUntil(scheduler.Now() + 1e-9); };
  const auto arrive = [&](const JobSpec& job) {
    controller.AppRegister(job.app, job.workload);
    for (const ConnSpec& conn : job.conns) {
      controller.ConnCreate(job.app, conn.src, conn.dst, conn.salt);
    }
  };

  for (const JobSpec& job : schedule.ramp) {
    arrive(job);
    settle();  // One coalesced flush per job arrival.
  }

  UniverseResult result;
  result.churn_flush_seconds.reserve(schedule.events.size());
  for (const Schedule::Event& event : schedule.events) {
    for (const ConnSpec& conn : event.departs.conns) {
      controller.ConnDestroy(event.departs.app, conn.src, conn.dst, conn.salt);
    }
    controller.AppDeregister(event.departs.app);
    arrive(event.arrives);
    settle();  // Departure + arrival in one instant: exactly one flush.
    result.churn_flush_seconds.push_back(controller.stats().last_calc_wall_seconds);
  }

  result.digest = controller.StateDigest(network);
  result.port_reconfigurations = controller.stats().port_reconfigurations;
  result.flushes = controller.distributed_stats().flushes;
  result.ports_flushed = controller.distributed_stats().ports_flushed;
  result.conn_creates = controller.stats().conn_creates;
  return result;
}

void Run() {
  const uint64_t seed = EnvSeed();
  const int scale = EnvInt("SABA_FIG11_SCALE", 5);
  const int target_flows = EnvInt("SABA_FIG11_SCALE_FLOWS", 200000);
  const int num_events = EnvInt("SABA_FIG11_SCALE_EVENTS", 120);
  const int shards_knob = EnvShards();
  if (scale < 1 || target_flows < 1 || num_events < 1) {
    std::cerr << "fatal: SABA_FIG11_SCALE, SABA_FIG11_SCALE_FLOWS and "
                 "SABA_FIG11_SCALE_EVENTS must be >= 1\n";
    std::exit(2);
  }

  PrintBanner(std::cout, "Figure 11 at scale",
              "Sharded distributed-controller flush under steady-state churn on a " +
                  std::to_string(scale) +
                  "x spine-leaf fabric; jobs of 32 instances with fanout-4 rings, one "
                  "job replaced per event. Latency distributions per shard count go to "
                  "stderr; stdout is shard-count-invariant by the DESIGN.md §7.3 "
                  "contract.",
              seed);

  const Topology topo = BuildSpineLeaf({.num_spine = 54,
                                        .num_leaf = 102 * scale,
                                        .num_tor = 108 * scale,
                                        .hosts_per_tor = 18,
                                        .num_pods = 6 * scale,
                                        .host_link_bps = Gbps64(56),
                                        .tor_leaf_bps = Gbps64(56),
                                        .leaf_spine_bps = Gbps64(56)});
  const std::vector<NodeId> hosts = topo.Hosts();

  // 64 profiled workloads; the offline database clusters them into 8 PLs
  // once, replicated to every shard (§5.4).
  constexpr int kWorkloads = 64;
  SensitivityTable table;
  Rng model_rng(Rng::StreamSeed(seed, 1));
  for (int w = 0; w < kWorkloads; ++w) {
    SensitivityEntry entry;
    entry.model = RandomModel(&model_rng);
    table.Put("w" + std::to_string(w), entry);
  }
  const MappingDatabase database =
      MappingDatabase::Build(table, /*num_pls=*/8, Rng::StreamSeed(seed, 2));

  const Schedule schedule =
      BuildSchedule(hosts, kWorkloads, static_cast<size_t>(target_flows), num_events,
                    Rng::StreamSeed(seed, 3));
  std::cerr << "[fig11-scale] " << hosts.size() << " hosts, " << topo.num_links() << " ports, "
            << schedule.ramp.size() << " jobs, " << schedule.concurrent_flows
            << " concurrent flows, " << schedule.events.size() << " churn events\n";

  std::vector<int> shard_counts;
  if (shards_knob > 0) {
    shard_counts.push_back(shards_knob);
  } else {
    shard_counts = {1, 2, 4, 8};
  }

  std::vector<UniverseResult> results;
  for (const int shards : shard_counts) {
    results.push_back(RunUniverse(topo, table, database, schedule, shards,
                                  Rng::StreamSeed(seed, 4)));
    const UniverseResult& r = results.back();
    std::vector<double> ms;
    ms.reserve(r.churn_flush_seconds.size());
    for (const double s : r.churn_flush_seconds) {
      ms.push_back(s * 1e3);
    }
    std::fprintf(stderr,
                 "[fig11-scale] shards=%d churn flush ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                 shards, Percentile(ms, 50), Percentile(ms, 90), Percentile(ms, 99),
                 Percentile(ms, 100));
  }

  // Every universe consumed the same delta stream, so the programmed state
  // and the merged counters must be bit-identical (§7.3). A mismatch is a
  // determinism bug, not a report.
  for (size_t u = 1; u < results.size(); ++u) {
    if (results[u].digest != results[0].digest ||
        results[u].port_reconfigurations != results[0].port_reconfigurations ||
        results[u].flushes != results[0].flushes ||
        results[u].ports_flushed != results[0].ports_flushed ||
        results[u].conn_creates != results[0].conn_creates) {
      std::cerr << "fatal: shard count " << shard_counts[u]
                << " diverged from shard count " << shard_counts[0]
                << " (digest or invariant counters differ)\n";
      std::exit(1);
    }
  }

  // Shard-count-invariant report: these lines must be byte-identical for
  // every SABA_SHARDS setting (CI diffs SABA_SHARDS=1 against =8).
  char digest_line[64];
  std::snprintf(digest_line, sizeof(digest_line), "state digest: %016llx",
                static_cast<unsigned long long>(results[0].digest));
  std::cout << digest_line << '\n';
  std::cout << "port reconfigurations: " << results[0].port_reconfigurations << '\n';
  std::cout << "flushes: " << results[0].flushes << '\n';
  std::cout << "ports flushed: " << results[0].ports_flushed << '\n';
  std::cout << "conns created: " << results[0].conn_creates << '\n';
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
