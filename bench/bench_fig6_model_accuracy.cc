// Figure 6: accuracy (R^2) of the sensitivity models versus (a) polynomial
// degree, (b) runtime dataset size, and (c) runtime node count.
//
// Methodology (§4.2): models are fitted to the 8-node, 1x-dataset profile;
// accuracy against a different runtime configuration is the R^2 of the
// profiled model evaluated on the slowdown curve *measured* at that
// configuration.
//
// Paper trends: (a) R^2 >= 0.60 at k=1 everywhere and rises with k (SQL
// 0.63 -> 0.96); (b) 0.1x/10x datasets keep R^2 >= 0.55, SVM most robust,
// NI worst; (c) R^2 >= 0.50 through 3x nodes (NW lowest at 0.51), most
// models drop below 0.50 at 4x except LR, RF, Sort.

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/numerics/regression.h"

namespace saba {
namespace {

void DegreeStudy(uint64_t seed) {
  std::cout << "--- Fig 6a: R^2 vs polynomial degree ---\n";
  TablePrinter table({"Workload", "k=1", "k=2", "k=3"});
  const auto& catalog = HiBenchCatalog();
  // One profiling task per workload; the refits are cheap and stay serial.
  const std::vector<ProfileResult> profiles =
      RunSweep<ProfileResult>("fig6a profiles", catalog.size(), [&](size_t w) {
        ProfilerOptions options;
        options.seed = seed;
        return OfflineProfiler(options).Profile(catalog[w]);
      });
  for (size_t w = 0; w < catalog.size(); ++w) {
    std::vector<std::string> row = {catalog[w].name};
    for (size_t k = 1; k <= 3; ++k) {
      row.push_back(
          Fmt(RSquaredClamped(FitPolynomial(profiles[w].samples, k), profiles[w].samples), 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << '\n';
}

// Scores the 1x/8-node model of `spec` against the measured curve of a
// scaled deployment.
double ScoreAgainstRuntime(const WorkloadSpec& spec, const SensitivityModel& model,
                           double dataset_scale, int nodes, uint64_t seed) {
  ProfilerOptions options;
  options.seed = seed;
  OfflineProfiler profiler(options);
  const std::vector<Sample> runtime_curve =
      profiler.MeasureSlowdownCurve(ScaleWorkload(spec, dataset_scale, nodes));
  return RSquaredClamped(model.polynomial(), runtime_curve);
}

// Shared grid runner for 6b/6c: one task per (workload, configuration) cell,
// each re-measuring the slowdown curve of a scaled deployment.
void GridStudy(const std::string& label, const SensitivityTable& table, uint64_t seed,
               const std::vector<std::pair<double, int>>& configs,
               const std::vector<std::string>& headers) {
  const auto& catalog = HiBenchCatalog();
  const std::vector<double> scores = RunSweep<double>(
      label, catalog.size() * configs.size(), [&](size_t t) {
        const WorkloadSpec& spec = catalog[t / configs.size()];
        const auto& [scale, nodes] = configs[t % configs.size()];
        return ScoreAgainstRuntime(spec, table.ModelOrDefault(spec.name), scale, nodes, seed);
      });
  TablePrinter out(headers);
  for (size_t w = 0; w < catalog.size(); ++w) {
    std::vector<std::string> row = {catalog[w].name};
    for (size_t c = 0; c < configs.size(); ++c) {
      row.push_back(Fmt(scores[w * configs.size() + c], 2));
    }
    out.AddRow(row);
  }
  out.Print(std::cout);
}

void DatasetStudy(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Fig 6b: R^2 vs runtime dataset size (k=3) ---\n";
  GridStudy("fig6b cells", table, seed, {{0.1, 8}, {1.0, 8}, {10.0, 8}},
            {"Workload", "0.1x", "1x", "10x"});
  std::cout << '\n';
}

void NodeStudy(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Fig 6c: R^2 vs runtime node count (k=3) ---\n";
  GridStudy("fig6c cells", table, seed, {{1.0, 4}, {1.0, 8}, {1.0, 16}, {1.0, 24}, {1.0, 32}},
            {"Workload", "0.5x (4)", "1x (8)", "2x (16)", "3x (24)", "4x (32)"});
}

void Run() {
  const uint64_t seed = EnvSeed();
  PrintBanner(std::cout, "Figure 6",
              "Sensitivity-model accuracy vs degree (a), runtime dataset size (b), and "
              "runtime node count (c).",
              seed);
  DegreeStudy(seed);
  const SensitivityTable table = ProfileCatalog(seed);
  DatasetStudy(table, seed);
  NodeStudy(table, seed);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
