// Figure 6: accuracy (R^2) of the sensitivity models versus (a) polynomial
// degree, (b) runtime dataset size, and (c) runtime node count.
//
// Methodology (§4.2): models are fitted to the 8-node, 1x-dataset profile;
// accuracy against a different runtime configuration is the R^2 of the
// profiled model evaluated on the slowdown curve *measured* at that
// configuration.
//
// Paper trends: (a) R^2 >= 0.60 at k=1 everywhere and rises with k (SQL
// 0.63 -> 0.96); (b) 0.1x/10x datasets keep R^2 >= 0.55, SVM most robust,
// NI worst; (c) R^2 >= 0.50 through 3x nodes (NW lowest at 0.51), most
// models drop below 0.50 at 4x except LR, RF, Sort.

#include <iostream>

#include "bench/bench_util.h"
#include "src/exp/report.h"
#include "src/numerics/regression.h"

namespace saba {
namespace {

void DegreeStudy(uint64_t seed) {
  std::cout << "--- Fig 6a: R^2 vs polynomial degree ---\n";
  TablePrinter table({"Workload", "k=1", "k=2", "k=3"});
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    ProfilerOptions options;
    options.seed = seed;
    const ProfileResult profile = OfflineProfiler(options).Profile(spec);
    std::vector<std::string> row = {spec.name};
    for (size_t k = 1; k <= 3; ++k) {
      row.push_back(Fmt(RSquaredClamped(FitPolynomial(profile.samples, k), profile.samples), 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << '\n';
}

// Scores the 1x/8-node model of `spec` against the measured curve of a
// scaled deployment.
double ScoreAgainstRuntime(const WorkloadSpec& spec, const SensitivityModel& model,
                           double dataset_scale, int nodes, uint64_t seed) {
  ProfilerOptions options;
  options.seed = seed;
  OfflineProfiler profiler(options);
  const std::vector<Sample> runtime_curve =
      profiler.MeasureSlowdownCurve(ScaleWorkload(spec, dataset_scale, nodes));
  return RSquaredClamped(model.polynomial(), runtime_curve);
}

void DatasetStudy(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Fig 6b: R^2 vs runtime dataset size (k=3) ---\n";
  TablePrinter out({"Workload", "0.1x", "1x", "10x"});
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    const SensitivityModel model = table.ModelOrDefault(spec.name);
    out.AddRow({spec.name, Fmt(ScoreAgainstRuntime(spec, model, 0.1, 8, seed), 2),
                Fmt(ScoreAgainstRuntime(spec, model, 1.0, 8, seed), 2),
                Fmt(ScoreAgainstRuntime(spec, model, 10.0, 8, seed), 2)});
  }
  out.Print(std::cout);
  std::cout << '\n';
}

void NodeStudy(const SensitivityTable& table, uint64_t seed) {
  std::cout << "--- Fig 6c: R^2 vs runtime node count (k=3) ---\n";
  TablePrinter out({"Workload", "0.5x (4)", "1x (8)", "2x (16)", "3x (24)", "4x (32)"});
  for (const WorkloadSpec& spec : HiBenchCatalog()) {
    const SensitivityModel model = table.ModelOrDefault(spec.name);
    std::vector<std::string> row = {spec.name};
    for (int nodes : {4, 8, 16, 24, 32}) {
      row.push_back(Fmt(ScoreAgainstRuntime(spec, model, 1.0, nodes, seed), 2));
    }
    out.AddRow(row);
  }
  out.Print(std::cout);
}

void Run() {
  const uint64_t seed = EnvSeed();
  PrintBanner(std::cout, "Figure 6",
              "Sensitivity-model accuracy vs degree (a), runtime dataset size (b), and "
              "runtime node count (c).",
              seed);
  DegreeStudy(seed);
  const SensitivityTable table = ProfileCatalog(seed);
  DatasetStudy(table, seed);
  NodeStudy(table, seed);
}

}  // namespace
}  // namespace saba

int main() {
  saba::Run();
  return 0;
}
