# Empty compiler generated dependencies file for bench_fig10_simulation.
# This may be replaced when dependencies are built.
