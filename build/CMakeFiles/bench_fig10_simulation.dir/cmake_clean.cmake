file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_simulation.dir/bench/bench_fig10_simulation.cc.o"
  "CMakeFiles/bench_fig10_simulation.dir/bench/bench_fig10_simulation.cc.o.d"
  "bench/bench_fig10_simulation"
  "bench/bench_fig10_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
