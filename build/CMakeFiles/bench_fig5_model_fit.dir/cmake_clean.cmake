file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_model_fit.dir/bench/bench_fig5_model_fit.cc.o"
  "CMakeFiles/bench_fig5_model_fit.dir/bench/bench_fig5_model_fit.cc.o.d"
  "bench/bench_fig5_model_fit"
  "bench/bench_fig5_model_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_model_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
