# Empty dependencies file for bench_fig2_utilization.
# This may be replaced when dependencies are built.
