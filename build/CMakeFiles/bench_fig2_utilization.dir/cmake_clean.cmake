file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_utilization.dir/bench/bench_fig2_utilization.cc.o"
  "CMakeFiles/bench_fig2_utilization.dir/bench/bench_fig2_utilization.cc.o.d"
  "bench/bench_fig2_utilization"
  "bench/bench_fig2_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
