# Empty dependencies file for bench_fig8_testbed.
# This may be replaced when dependencies are built.
