file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_testbed.dir/bench/bench_fig8_testbed.cc.o"
  "CMakeFiles/bench_fig8_testbed.dir/bench/bench_fig8_testbed.cc.o.d"
  "bench/bench_fig8_testbed"
  "bench/bench_fig8_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
