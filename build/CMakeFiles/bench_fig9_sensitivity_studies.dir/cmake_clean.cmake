file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sensitivity_studies.dir/bench/bench_fig9_sensitivity_studies.cc.o"
  "CMakeFiles/bench_fig9_sensitivity_studies.dir/bench/bench_fig9_sensitivity_studies.cc.o.d"
  "bench/bench_fig9_sensitivity_studies"
  "bench/bench_fig9_sensitivity_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sensitivity_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
