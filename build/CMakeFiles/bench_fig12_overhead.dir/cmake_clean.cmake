file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_overhead.dir/bench/bench_fig12_overhead.cc.o"
  "CMakeFiles/bench_fig12_overhead.dir/bench/bench_fig12_overhead.cc.o.d"
  "bench/bench_fig12_overhead"
  "bench/bench_fig12_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
