file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_controller.dir/bench/bench_fig11_controller.cc.o"
  "CMakeFiles/bench_fig11_controller.dir/bench/bench_fig11_controller.cc.o.d"
  "bench/bench_fig11_controller"
  "bench/bench_fig11_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
