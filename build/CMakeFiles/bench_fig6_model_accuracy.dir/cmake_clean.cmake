file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_model_accuracy.dir/bench/bench_fig6_model_accuracy.cc.o"
  "CMakeFiles/bench_fig6_model_accuracy.dir/bench/bench_fig6_model_accuracy.cc.o.d"
  "bench/bench_fig6_model_accuracy"
  "bench/bench_fig6_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
