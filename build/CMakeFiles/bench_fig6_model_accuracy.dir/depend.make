# Empty dependencies file for bench_fig6_model_accuracy.
# This may be replaced when dependencies are built.
