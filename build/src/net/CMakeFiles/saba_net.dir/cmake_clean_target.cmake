file(REMOVE_RECURSE
  "libsaba_net.a"
)
