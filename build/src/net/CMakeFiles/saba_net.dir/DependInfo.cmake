
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/allocator.cc" "src/net/CMakeFiles/saba_net.dir/allocator.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/allocator.cc.o.d"
  "/root/repo/src/net/flow_simulator.cc" "src/net/CMakeFiles/saba_net.dir/flow_simulator.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/flow_simulator.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/saba_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/network.cc.o.d"
  "/root/repo/src/net/packet_sim.cc" "src/net/CMakeFiles/saba_net.dir/packet_sim.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/packet_sim.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/net/CMakeFiles/saba_net.dir/routing.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/routing.cc.o.d"
  "/root/repo/src/net/token_bucket.cc" "src/net/CMakeFiles/saba_net.dir/token_bucket.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/token_bucket.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/saba_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/topology.cc.o.d"
  "/root/repo/src/net/wrr_reference.cc" "src/net/CMakeFiles/saba_net.dir/wrr_reference.cc.o" "gcc" "src/net/CMakeFiles/saba_net.dir/wrr_reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/saba_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
