file(REMOVE_RECURSE
  "CMakeFiles/saba_net.dir/allocator.cc.o"
  "CMakeFiles/saba_net.dir/allocator.cc.o.d"
  "CMakeFiles/saba_net.dir/flow_simulator.cc.o"
  "CMakeFiles/saba_net.dir/flow_simulator.cc.o.d"
  "CMakeFiles/saba_net.dir/network.cc.o"
  "CMakeFiles/saba_net.dir/network.cc.o.d"
  "CMakeFiles/saba_net.dir/packet_sim.cc.o"
  "CMakeFiles/saba_net.dir/packet_sim.cc.o.d"
  "CMakeFiles/saba_net.dir/routing.cc.o"
  "CMakeFiles/saba_net.dir/routing.cc.o.d"
  "CMakeFiles/saba_net.dir/token_bucket.cc.o"
  "CMakeFiles/saba_net.dir/token_bucket.cc.o.d"
  "CMakeFiles/saba_net.dir/topology.cc.o"
  "CMakeFiles/saba_net.dir/topology.cc.o.d"
  "CMakeFiles/saba_net.dir/wrr_reference.cc.o"
  "CMakeFiles/saba_net.dir/wrr_reference.cc.o.d"
  "libsaba_net.a"
  "libsaba_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
