# Empty dependencies file for saba_net.
# This may be replaced when dependencies are built.
