file(REMOVE_RECURSE
  "CMakeFiles/saba_core.dir/controller.cc.o"
  "CMakeFiles/saba_core.dir/controller.cc.o.d"
  "CMakeFiles/saba_core.dir/distributed_controller.cc.o"
  "CMakeFiles/saba_core.dir/distributed_controller.cc.o.d"
  "CMakeFiles/saba_core.dir/pl_mapper.cc.o"
  "CMakeFiles/saba_core.dir/pl_mapper.cc.o.d"
  "CMakeFiles/saba_core.dir/planner.cc.o"
  "CMakeFiles/saba_core.dir/planner.cc.o.d"
  "CMakeFiles/saba_core.dir/profiler.cc.o"
  "CMakeFiles/saba_core.dir/profiler.cc.o.d"
  "CMakeFiles/saba_core.dir/queue_mapper.cc.o"
  "CMakeFiles/saba_core.dir/queue_mapper.cc.o.d"
  "CMakeFiles/saba_core.dir/saba_client.cc.o"
  "CMakeFiles/saba_core.dir/saba_client.cc.o.d"
  "CMakeFiles/saba_core.dir/sensitivity.cc.o"
  "CMakeFiles/saba_core.dir/sensitivity.cc.o.d"
  "CMakeFiles/saba_core.dir/weight_solver.cc.o"
  "CMakeFiles/saba_core.dir/weight_solver.cc.o.d"
  "libsaba_core.a"
  "libsaba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
