file(REMOVE_RECURSE
  "libsaba_core.a"
)
