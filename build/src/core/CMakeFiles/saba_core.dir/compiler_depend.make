# Empty compiler generated dependencies file for saba_core.
# This may be replaced when dependencies are built.
