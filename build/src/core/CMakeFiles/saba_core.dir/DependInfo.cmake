
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/saba_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/controller.cc.o.d"
  "/root/repo/src/core/distributed_controller.cc" "src/core/CMakeFiles/saba_core.dir/distributed_controller.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/distributed_controller.cc.o.d"
  "/root/repo/src/core/pl_mapper.cc" "src/core/CMakeFiles/saba_core.dir/pl_mapper.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/pl_mapper.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/saba_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/planner.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/saba_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/queue_mapper.cc" "src/core/CMakeFiles/saba_core.dir/queue_mapper.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/queue_mapper.cc.o.d"
  "/root/repo/src/core/saba_client.cc" "src/core/CMakeFiles/saba_core.dir/saba_client.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/saba_client.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/core/CMakeFiles/saba_core.dir/sensitivity.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/sensitivity.cc.o.d"
  "/root/repo/src/core/weight_solver.cc" "src/core/CMakeFiles/saba_core.dir/weight_solver.cc.o" "gcc" "src/core/CMakeFiles/saba_core.dir/weight_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/saba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/saba_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/saba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/saba_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
