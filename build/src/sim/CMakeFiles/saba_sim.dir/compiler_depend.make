# Empty compiler generated dependencies file for saba_sim.
# This may be replaced when dependencies are built.
