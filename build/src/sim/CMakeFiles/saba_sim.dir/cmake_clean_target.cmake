file(REMOVE_RECURSE
  "libsaba_sim.a"
)
