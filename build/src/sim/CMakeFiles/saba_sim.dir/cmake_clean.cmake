file(REMOVE_RECURSE
  "CMakeFiles/saba_sim.dir/event_scheduler.cc.o"
  "CMakeFiles/saba_sim.dir/event_scheduler.cc.o.d"
  "CMakeFiles/saba_sim.dir/log.cc.o"
  "CMakeFiles/saba_sim.dir/log.cc.o.d"
  "CMakeFiles/saba_sim.dir/rng.cc.o"
  "CMakeFiles/saba_sim.dir/rng.cc.o.d"
  "libsaba_sim.a"
  "libsaba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
