file(REMOVE_RECURSE
  "CMakeFiles/saba_baselines.dir/homa_policy.cc.o"
  "CMakeFiles/saba_baselines.dir/homa_policy.cc.o.d"
  "CMakeFiles/saba_baselines.dir/pfabric_policy.cc.o"
  "CMakeFiles/saba_baselines.dir/pfabric_policy.cc.o.d"
  "CMakeFiles/saba_baselines.dir/sincronia_policy.cc.o"
  "CMakeFiles/saba_baselines.dir/sincronia_policy.cc.o.d"
  "libsaba_baselines.a"
  "libsaba_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
