file(REMOVE_RECURSE
  "libsaba_baselines.a"
)
