# Empty dependencies file for saba_baselines.
# This may be replaced when dependencies are built.
