
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_runtime.cc" "src/workload/CMakeFiles/saba_workload.dir/app_runtime.cc.o" "gcc" "src/workload/CMakeFiles/saba_workload.dir/app_runtime.cc.o.d"
  "/root/repo/src/workload/workload_catalog.cc" "src/workload/CMakeFiles/saba_workload.dir/workload_catalog.cc.o" "gcc" "src/workload/CMakeFiles/saba_workload.dir/workload_catalog.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/workload/CMakeFiles/saba_workload.dir/workload_spec.cc.o" "gcc" "src/workload/CMakeFiles/saba_workload.dir/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/saba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/saba_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
