file(REMOVE_RECURSE
  "libsaba_workload.a"
)
