# Empty compiler generated dependencies file for saba_workload.
# This may be replaced when dependencies are built.
