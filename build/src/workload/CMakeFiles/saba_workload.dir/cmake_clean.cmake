file(REMOVE_RECURSE
  "CMakeFiles/saba_workload.dir/app_runtime.cc.o"
  "CMakeFiles/saba_workload.dir/app_runtime.cc.o.d"
  "CMakeFiles/saba_workload.dir/workload_catalog.cc.o"
  "CMakeFiles/saba_workload.dir/workload_catalog.cc.o.d"
  "CMakeFiles/saba_workload.dir/workload_spec.cc.o"
  "CMakeFiles/saba_workload.dir/workload_spec.cc.o.d"
  "libsaba_workload.a"
  "libsaba_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
