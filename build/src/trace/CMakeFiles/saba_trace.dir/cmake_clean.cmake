file(REMOVE_RECURSE
  "CMakeFiles/saba_trace.dir/timeseries.cc.o"
  "CMakeFiles/saba_trace.dir/timeseries.cc.o.d"
  "libsaba_trace.a"
  "libsaba_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
