file(REMOVE_RECURSE
  "libsaba_trace.a"
)
