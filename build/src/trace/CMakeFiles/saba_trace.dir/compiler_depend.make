# Empty compiler generated dependencies file for saba_trace.
# This may be replaced when dependencies are built.
