file(REMOVE_RECURSE
  "CMakeFiles/saba_numerics.dir/hierarchical.cc.o"
  "CMakeFiles/saba_numerics.dir/hierarchical.cc.o.d"
  "CMakeFiles/saba_numerics.dir/kmeans.cc.o"
  "CMakeFiles/saba_numerics.dir/kmeans.cc.o.d"
  "CMakeFiles/saba_numerics.dir/linalg.cc.o"
  "CMakeFiles/saba_numerics.dir/linalg.cc.o.d"
  "CMakeFiles/saba_numerics.dir/polynomial.cc.o"
  "CMakeFiles/saba_numerics.dir/polynomial.cc.o.d"
  "CMakeFiles/saba_numerics.dir/regression.cc.o"
  "CMakeFiles/saba_numerics.dir/regression.cc.o.d"
  "CMakeFiles/saba_numerics.dir/simplex_optimizer.cc.o"
  "CMakeFiles/saba_numerics.dir/simplex_optimizer.cc.o.d"
  "CMakeFiles/saba_numerics.dir/stats.cc.o"
  "CMakeFiles/saba_numerics.dir/stats.cc.o.d"
  "libsaba_numerics.a"
  "libsaba_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
