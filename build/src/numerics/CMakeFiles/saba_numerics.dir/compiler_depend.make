# Empty compiler generated dependencies file for saba_numerics.
# This may be replaced when dependencies are built.
