
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/hierarchical.cc" "src/numerics/CMakeFiles/saba_numerics.dir/hierarchical.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/hierarchical.cc.o.d"
  "/root/repo/src/numerics/kmeans.cc" "src/numerics/CMakeFiles/saba_numerics.dir/kmeans.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/kmeans.cc.o.d"
  "/root/repo/src/numerics/linalg.cc" "src/numerics/CMakeFiles/saba_numerics.dir/linalg.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/linalg.cc.o.d"
  "/root/repo/src/numerics/polynomial.cc" "src/numerics/CMakeFiles/saba_numerics.dir/polynomial.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/polynomial.cc.o.d"
  "/root/repo/src/numerics/regression.cc" "src/numerics/CMakeFiles/saba_numerics.dir/regression.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/regression.cc.o.d"
  "/root/repo/src/numerics/simplex_optimizer.cc" "src/numerics/CMakeFiles/saba_numerics.dir/simplex_optimizer.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/simplex_optimizer.cc.o.d"
  "/root/repo/src/numerics/stats.cc" "src/numerics/CMakeFiles/saba_numerics.dir/stats.cc.o" "gcc" "src/numerics/CMakeFiles/saba_numerics.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/saba_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
