file(REMOVE_RECURSE
  "libsaba_numerics.a"
)
