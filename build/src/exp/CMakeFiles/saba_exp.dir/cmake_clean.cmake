file(REMOVE_RECURSE
  "CMakeFiles/saba_exp.dir/cluster_setup.cc.o"
  "CMakeFiles/saba_exp.dir/cluster_setup.cc.o.d"
  "CMakeFiles/saba_exp.dir/corun.cc.o"
  "CMakeFiles/saba_exp.dir/corun.cc.o.d"
  "CMakeFiles/saba_exp.dir/report.cc.o"
  "CMakeFiles/saba_exp.dir/report.cc.o.d"
  "CMakeFiles/saba_exp.dir/scenario.cc.o"
  "CMakeFiles/saba_exp.dir/scenario.cc.o.d"
  "libsaba_exp.a"
  "libsaba_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
