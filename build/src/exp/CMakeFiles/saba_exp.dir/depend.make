# Empty dependencies file for saba_exp.
# This may be replaced when dependencies are built.
