file(REMOVE_RECURSE
  "libsaba_exp.a"
)
