file(REMOVE_RECURSE
  "CMakeFiles/token_bucket_test.dir/token_bucket_test.cc.o"
  "CMakeFiles/token_bucket_test.dir/token_bucket_test.cc.o.d"
  "token_bucket_test"
  "token_bucket_test.pdb"
  "token_bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
