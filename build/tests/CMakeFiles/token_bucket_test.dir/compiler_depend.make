# Empty compiler generated dependencies file for token_bucket_test.
# This may be replaced when dependencies are built.
