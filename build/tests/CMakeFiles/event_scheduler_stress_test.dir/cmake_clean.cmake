file(REMOVE_RECURSE
  "CMakeFiles/event_scheduler_stress_test.dir/event_scheduler_stress_test.cc.o"
  "CMakeFiles/event_scheduler_stress_test.dir/event_scheduler_stress_test.cc.o.d"
  "event_scheduler_stress_test"
  "event_scheduler_stress_test.pdb"
  "event_scheduler_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_scheduler_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
