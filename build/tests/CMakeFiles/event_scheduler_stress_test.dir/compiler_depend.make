# Empty compiler generated dependencies file for event_scheduler_stress_test.
# This may be replaced when dependencies are built.
