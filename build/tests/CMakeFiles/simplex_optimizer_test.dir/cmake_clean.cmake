file(REMOVE_RECURSE
  "CMakeFiles/simplex_optimizer_test.dir/simplex_optimizer_test.cc.o"
  "CMakeFiles/simplex_optimizer_test.dir/simplex_optimizer_test.cc.o.d"
  "simplex_optimizer_test"
  "simplex_optimizer_test.pdb"
  "simplex_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
