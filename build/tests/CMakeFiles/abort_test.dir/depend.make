# Empty dependencies file for abort_test.
# This may be replaced when dependencies are built.
