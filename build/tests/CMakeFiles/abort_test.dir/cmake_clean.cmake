file(REMOVE_RECURSE
  "CMakeFiles/abort_test.dir/abort_test.cc.o"
  "CMakeFiles/abort_test.dir/abort_test.cc.o.d"
  "abort_test"
  "abort_test.pdb"
  "abort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
