file(REMOVE_RECURSE
  "CMakeFiles/corun_test.dir/corun_test.cc.o"
  "CMakeFiles/corun_test.dir/corun_test.cc.o.d"
  "corun_test"
  "corun_test.pdb"
  "corun_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corun_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
