# Empty dependencies file for corun_test.
# This may be replaced when dependencies are built.
