file(REMOVE_RECURSE
  "CMakeFiles/event_scheduler_test.dir/event_scheduler_test.cc.o"
  "CMakeFiles/event_scheduler_test.dir/event_scheduler_test.cc.o.d"
  "event_scheduler_test"
  "event_scheduler_test.pdb"
  "event_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
