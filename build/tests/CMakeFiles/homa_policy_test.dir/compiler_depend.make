# Empty compiler generated dependencies file for homa_policy_test.
# This may be replaced when dependencies are built.
