file(REMOVE_RECURSE
  "CMakeFiles/homa_policy_test.dir/homa_policy_test.cc.o"
  "CMakeFiles/homa_policy_test.dir/homa_policy_test.cc.o.d"
  "homa_policy_test"
  "homa_policy_test.pdb"
  "homa_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homa_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
