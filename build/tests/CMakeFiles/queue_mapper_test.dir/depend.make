# Empty dependencies file for queue_mapper_test.
# This may be replaced when dependencies are built.
