file(REMOVE_RECURSE
  "CMakeFiles/queue_mapper_test.dir/queue_mapper_test.cc.o"
  "CMakeFiles/queue_mapper_test.dir/queue_mapper_test.cc.o.d"
  "queue_mapper_test"
  "queue_mapper_test.pdb"
  "queue_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
