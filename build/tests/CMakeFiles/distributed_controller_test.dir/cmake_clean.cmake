file(REMOVE_RECURSE
  "CMakeFiles/distributed_controller_test.dir/distributed_controller_test.cc.o"
  "CMakeFiles/distributed_controller_test.dir/distributed_controller_test.cc.o.d"
  "distributed_controller_test"
  "distributed_controller_test.pdb"
  "distributed_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
