# Empty dependencies file for weight_solver_test.
# This may be replaced when dependencies are built.
