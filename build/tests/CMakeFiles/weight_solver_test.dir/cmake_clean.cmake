file(REMOVE_RECURSE
  "CMakeFiles/weight_solver_test.dir/weight_solver_test.cc.o"
  "CMakeFiles/weight_solver_test.dir/weight_solver_test.cc.o.d"
  "weight_solver_test"
  "weight_solver_test.pdb"
  "weight_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
