# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sincronia_policy_test.
