file(REMOVE_RECURSE
  "CMakeFiles/sincronia_policy_test.dir/sincronia_policy_test.cc.o"
  "CMakeFiles/sincronia_policy_test.dir/sincronia_policy_test.cc.o.d"
  "sincronia_policy_test"
  "sincronia_policy_test.pdb"
  "sincronia_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sincronia_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
