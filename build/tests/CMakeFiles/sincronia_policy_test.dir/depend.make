# Empty dependencies file for sincronia_policy_test.
# This may be replaced when dependencies are built.
