# Empty compiler generated dependencies file for saba_client_test.
# This may be replaced when dependencies are built.
