file(REMOVE_RECURSE
  "CMakeFiles/saba_client_test.dir/saba_client_test.cc.o"
  "CMakeFiles/saba_client_test.dir/saba_client_test.cc.o.d"
  "saba_client_test"
  "saba_client_test.pdb"
  "saba_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saba_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
