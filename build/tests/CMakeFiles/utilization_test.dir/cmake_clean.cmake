file(REMOVE_RECURSE
  "CMakeFiles/utilization_test.dir/utilization_test.cc.o"
  "CMakeFiles/utilization_test.dir/utilization_test.cc.o.d"
  "utilization_test"
  "utilization_test.pdb"
  "utilization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
