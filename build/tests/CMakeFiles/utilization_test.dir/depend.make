# Empty dependencies file for utilization_test.
# This may be replaced when dependencies are built.
