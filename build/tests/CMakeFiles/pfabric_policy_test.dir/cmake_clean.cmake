file(REMOVE_RECURSE
  "CMakeFiles/pfabric_policy_test.dir/pfabric_policy_test.cc.o"
  "CMakeFiles/pfabric_policy_test.dir/pfabric_policy_test.cc.o.d"
  "pfabric_policy_test"
  "pfabric_policy_test.pdb"
  "pfabric_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfabric_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
