# Empty compiler generated dependencies file for pfabric_policy_test.
# This may be replaced when dependencies are built.
