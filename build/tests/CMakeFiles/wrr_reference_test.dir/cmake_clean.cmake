file(REMOVE_RECURSE
  "CMakeFiles/wrr_reference_test.dir/wrr_reference_test.cc.o"
  "CMakeFiles/wrr_reference_test.dir/wrr_reference_test.cc.o.d"
  "wrr_reference_test"
  "wrr_reference_test.pdb"
  "wrr_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrr_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
