# Empty dependencies file for wrr_reference_test.
# This may be replaced when dependencies are built.
