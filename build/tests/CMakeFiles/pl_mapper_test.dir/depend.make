# Empty dependencies file for pl_mapper_test.
# This may be replaced when dependencies are built.
