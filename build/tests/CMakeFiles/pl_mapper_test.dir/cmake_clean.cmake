file(REMOVE_RECURSE
  "CMakeFiles/pl_mapper_test.dir/pl_mapper_test.cc.o"
  "CMakeFiles/pl_mapper_test.dir/pl_mapper_test.cc.o.d"
  "pl_mapper_test"
  "pl_mapper_test.pdb"
  "pl_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
