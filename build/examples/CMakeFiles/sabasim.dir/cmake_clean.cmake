file(REMOVE_RECURSE
  "CMakeFiles/sabasim.dir/sabasim.cpp.o"
  "CMakeFiles/sabasim.dir/sabasim.cpp.o.d"
  "sabasim"
  "sabasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sabasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
