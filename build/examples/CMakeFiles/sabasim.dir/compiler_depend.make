# Empty compiler generated dependencies file for sabasim.
# This may be replaced when dependencies are built.
