# Empty dependencies file for profiler_tool.
# This may be replaced when dependencies are built.
