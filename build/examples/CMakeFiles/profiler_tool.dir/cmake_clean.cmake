file(REMOVE_RECURSE
  "CMakeFiles/profiler_tool.dir/profiler_tool.cpp.o"
  "CMakeFiles/profiler_tool.dir/profiler_tool.cpp.o.d"
  "profiler_tool"
  "profiler_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
