file(REMOVE_RECURSE
  "CMakeFiles/datacenter_sim.dir/datacenter_sim.cpp.o"
  "CMakeFiles/datacenter_sim.dir/datacenter_sim.cpp.o.d"
  "datacenter_sim"
  "datacenter_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
