# Empty dependencies file for datacenter_sim.
# This may be replaced when dependencies are built.
