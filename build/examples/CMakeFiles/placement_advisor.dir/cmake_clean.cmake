file(REMOVE_RECURSE
  "CMakeFiles/placement_advisor.dir/placement_advisor.cpp.o"
  "CMakeFiles/placement_advisor.dir/placement_advisor.cpp.o.d"
  "placement_advisor"
  "placement_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
