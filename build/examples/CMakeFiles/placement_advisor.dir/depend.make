# Empty dependencies file for placement_advisor.
# This may be replaced when dependencies are built.
