file(REMOVE_RECURSE
  "CMakeFiles/colocate_lr_pr.dir/colocate_lr_pr.cpp.o"
  "CMakeFiles/colocate_lr_pr.dir/colocate_lr_pr.cpp.o.d"
  "colocate_lr_pr"
  "colocate_lr_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocate_lr_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
