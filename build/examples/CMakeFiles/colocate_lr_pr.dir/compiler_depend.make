# Empty compiler generated dependencies file for colocate_lr_pr.
# This may be replaced when dependencies are built.
